//! Per-node simulation state: hardware, platform binding, control plane,
//! recorders.
//!
//! The daemon wiring that used to live here as ad-hoc enums is gone: a
//! node's control scheme is described by a
//! [`SchemeSpec`](unitherm_core::control_plane::SchemeSpec), turned into a
//! daemon pipeline by its single `build()` factory, and run by the core
//! [`ControlPlane`] against the node's probed [`PlatformBinding`] — the
//! same path the hwmon `ControlStack` uses.

use unitherm_core::actuator::FreqMhz;
use unitherm_core::control_plane::{BuildContext, ControlPlane, SensorSample};
use unitherm_hwmon::{LmSensors, PlatformActuators, PlatformBinding};
use unitherm_metrics::{RunningStats, TimeSeries};
use unitherm_obs::{Counters, EventSink, Observer, RingSink, TeeSink};
use unitherm_simnode::faults::FaultPlan;
use unitherm_simnode::Node;
use unitherm_workload::{WorkState, Workload};

use crate::replay::classify_fault;
use crate::scenario::Scenario;

/// Recorded traces and counters for one node.
pub struct NodeRecorder {
    /// Sensor temperature (°C) at each sample.
    pub temp: TimeSeries,
    /// Commanded fan duty (%) at each sample.
    pub duty: TimeSeries,
    /// Requested CPU frequency (MHz) at each sample.
    pub freq: TimeSeries,
    /// Instantaneous wall power (W) at each sample.
    pub power: TimeSeries,
    /// CPU utilization at each sample.
    pub util: TimeSeries,
    /// Frequency-change events: `(time, new MHz)`.
    pub freq_events: Vec<(f64, FreqMhz)>,
    /// Whether series recording is enabled.
    pub enabled: bool,
    /// Streaming temperature statistics (kept even when series recording is
    /// off, so benchmark-mode runs still report averages).
    pub temp_stats: RunningStats,
    /// Streaming commanded-duty statistics.
    pub duty_stats: RunningStats,
}

impl NodeRecorder {
    /// `expected_samples` pre-reserves the series so steady-state recording
    /// appends without reallocating (0 when recording is disabled).
    ///
    /// A disabled recorder allocates nothing at all — no metric-name
    /// strings, no series or event capacity — so fleet-scale benchmark runs
    /// (100k nodes, recording off) pay zero heap for recorders.
    fn new(node_idx: usize, enabled: bool, expected_samples: usize) -> Self {
        let n = |metric: &str| {
            if enabled {
                format!("node{node_idx}.{metric}")
            } else {
                String::new()
            }
        };
        let u = |unit: &'static str| if enabled { unit } else { "" };
        let cap = if enabled { expected_samples } else { 0 };
        // Frequency events arrive at most once per sample; a quarter of the
        // sample count absorbs even a thrashing governor without growth,
        // while short scenarios stay at a small floor instead of a flat 64.
        let event_cap = if enabled { (expected_samples / 4).clamp(8, 4096) } else { 0 };
        Self {
            temp: TimeSeries::with_capacity(n("temp"), u("°C"), cap),
            duty: TimeSeries::with_capacity(n("duty"), u("%"), cap),
            freq: TimeSeries::with_capacity(n("freq"), u("MHz"), cap),
            power: TimeSeries::with_capacity(n("power"), u("W"), cap),
            util: TimeSeries::with_capacity(n("util"), u(""), cap),
            freq_events: Vec::with_capacity(event_cap),
            enabled,
            temp_stats: RunningStats::new(),
            duty_stats: RunningStats::new(),
        }
    }
}

/// One node's full simulation state.
pub struct NodeSim {
    /// The simulated hardware.
    pub node: Node,
    /// The rank's workload.
    pub workload: Box<dyn Workload>,
    /// lm-sensors access.
    pub lm: LmSensors,
    /// The daemon pipeline (built by `SchemeSpec::build`) plus failsafe.
    pub plane: ControlPlane,
    /// The probed hardware seams the plane actuates through.
    pub binding: PlatformBinding,
    /// Trace recorder.
    pub rec: NodeRecorder,
    /// Wall-clock second at which this rank's workload finished.
    pub finish_time_s: Option<f64>,
    /// This node's rank index (stamped into emitted event records).
    pub index: u32,
    /// Fixed-capacity ring of the most recent control-plane events
    /// (allocation-free in steady state; capacity from the scenario).
    pub events: RingSink,
    /// Monotonic control-plane counters for this node.
    pub counters: Counters,
    /// Watermark into `Node::fault_log`: entries before it have already
    /// been emitted as `FaultInjected` events.
    fault_log_seen: usize,
    /// True when this node must take the scalar tick path every tick: its
    /// control plane runs per-tick daemons, it has fault sources, or the
    /// scenario forces scalar. False means the node's physics runs on the
    /// structure-of-arrays lanes between samples (see `crate::sim`).
    pub(crate) passthrough: bool,
    /// True when the workload reports `Running` forever (never parks,
    /// never finishes) — lets the fleet skip its per-tick state poll.
    pub(crate) endless: bool,
}

impl NodeSim {
    /// Builds one node per the scenario: probe the binding the scheme
    /// needs, build the daemon pipeline through the scheme factory, attach.
    pub fn build(scenario: &Scenario, node_idx: usize) -> Self {
        let seed = scenario.node_seed(node_idx);
        let faults = scenario
            .faults
            .iter()
            .find(|(n, _)| *n == node_idx)
            .map(|(_, p)| p.clone())
            .unwrap_or_else(FaultPlan::none);
        let mut node = Node::with_faults(scenario.node_config_for(node_idx).clone(), seed, faults);
        if let Some((_, schedule)) = scenario.tick_faults.iter().find(|(n, _)| *n == node_idx) {
            node.set_tick_faults(schedule.clone());
        }
        let workload = scenario.workload.instantiate(node_idx, scenario.seed);

        let spec = scenario.effective_scheme(node_idx);
        let mut binding =
            PlatformBinding::probe(&mut node, &spec).expect("chip reachable at build time");
        let ctx = BuildContext { available_mhz: PlatformBinding::available_mhz(&node) };
        let mut plane = ControlPlane::new(spec.build(&ctx), scenario.failsafe);
        let attach_sample = SensorSample {
            now_s: 0.0,
            fresh_temp_c: None,
            temp_c: None,
            utilization: node.utilization(),
            die_temp_c: node.die_temp_c(),
        };
        plane.attach(
            &attach_sample,
            &mut PlatformActuators { node: &mut node, binding: &mut binding },
        );

        // Per-tick daemons (e.g. CPUSPEED) and fault sources need the full
        // scalar tick every tick; everything else can ride the batch lanes
        // between samples.
        let passthrough = plane.wants_tick() || node.has_fault_sources() || scenario.force_scalar;
        let endless = workload.is_endless();

        Self {
            node,
            workload,
            lm: LmSensors::new(),
            plane,
            binding,
            rec: NodeRecorder::new(node_idx, scenario.record_series, scenario.expected_samples()),
            finish_time_s: None,
            index: node_idx as u32,
            events: RingSink::with_capacity(scenario.event_capacity),
            counters: Counters::default(),
            fault_log_seen: 0,
            passthrough,
            endless,
        }
    }

    /// Advances the workload by one tick and applies its utilization to the
    /// CPU. Returns the rank's state after the tick.
    pub fn tick_workload(&mut self, dt_s: f64) -> WorkState {
        let speed = self.node.speed_factor();
        let out = self.workload.advance(dt_s, speed);
        self.node.set_load(out.utilization, out.activity);
        self.workload.state()
    }

    /// Advances the physics and per-tick daemons (CPUSPEED observes
    /// utilization every tick). `journal` additionally receives any events
    /// the per-tick daemons emit (None on the allocation-free default path).
    pub fn tick_hardware(
        &mut self,
        dt_s: f64,
        now_s: f64,
        mut journal: Option<&mut (dyn EventSink + 'static)>,
    ) {
        let util = self.node.utilization();
        let applied = match journal.as_deref_mut() {
            None => {
                let mut obs =
                    Observer::new(&mut self.events, &mut self.counters, self.index, now_s);
                self.plane.on_tick_observed(
                    dt_s,
                    util,
                    &mut PlatformActuators { node: &mut self.node, binding: &mut self.binding },
                    &mut obs,
                )
            }
            Some(journal) => {
                let mut tee = TeeSink::new(&mut self.events, journal);
                let mut obs = Observer::new(&mut tee, &mut self.counters, self.index, now_s);
                self.plane.on_tick_observed(
                    dt_s,
                    util,
                    &mut PlatformActuators { node: &mut self.node, binding: &mut self.binding },
                    &mut obs,
                )
            }
        };
        if let Some(mhz) = applied {
            if self.rec.enabled {
                self.rec.freq_events.push((now_s, mhz));
            }
        }
        self.node.tick(dt_s);
        self.emit_fault_events(now_s, journal);
    }

    /// Emits a `FaultInjected` event for every fault the node's plans
    /// delivered during the tick that just ran. Runs on both the serial and
    /// sharded paths (the sharded journal scratch drains in node order), so
    /// the journal stream stays thread-count invariant. No-op — and
    /// allocation-free — on fault-free ticks.
    fn emit_fault_events(&mut self, now_s: f64, journal: Option<&mut (dyn EventSink + 'static)>) {
        let log = self.node.fault_log();
        if self.fault_log_seen >= log.len() {
            return;
        }
        let start = self.fault_log_seen;
        self.fault_log_seen = log.len();
        // The log slice borrows `self.node`; the observer borrows the
        // disjoint `events`/`counters` fields, so both can be live at once.
        let log = self.node.fault_log();
        match journal {
            None => {
                let mut obs =
                    Observer::new(&mut self.events, &mut self.counters, self.index, now_s);
                for &(_, ev) in &log[start..] {
                    let (kind, magnitude) = classify_fault(ev);
                    obs.fault_injected(kind, magnitude);
                }
            }
            Some(journal) => {
                let mut tee = TeeSink::new(&mut self.events, journal);
                let mut obs = Observer::new(&mut tee, &mut self.counters, self.index, now_s);
                for &(_, ev) in &log[start..] {
                    let (kind, magnitude) = classify_fault(ev);
                    obs.fault_injected(kind, magnitude);
                }
            }
        }
    }

    /// Runs the 4 Hz sampling path: read the sensor, hand the sample to the
    /// control plane (failsafe supervision + daemon pipeline), record
    /// traces. Emitted events land in this node's ring (and `journal`, when
    /// one is attached).
    pub fn on_sample(&mut self, now_s: f64, journal: Option<&mut (dyn EventSink + 'static)>) {
        // Hottest-sensor read. `fresh` distinguishes a live reading from
        // the stale fallback the controllers tolerate — the failsafe cares
        // about the difference.
        let fresh = self.lm.read_hottest_celsius(&mut self.node).ok();
        let temp = fresh
            .or_else(|| self.lm.last_good().map(unitherm_simnode::units::MilliCelsius::to_celsius));
        let sample = SensorSample {
            now_s,
            fresh_temp_c: fresh,
            temp_c: temp,
            utilization: self.node.utilization(),
            die_temp_c: self.node.die_temp_c(),
        };
        let out = match journal {
            None => {
                let mut obs =
                    Observer::new(&mut self.events, &mut self.counters, self.index, now_s);
                self.plane.on_sample_observed(
                    &sample,
                    &mut PlatformActuators { node: &mut self.node, binding: &mut self.binding },
                    &mut obs,
                )
            }
            Some(journal) => {
                let mut tee = TeeSink::new(&mut self.events, journal);
                let mut obs = Observer::new(&mut tee, &mut self.counters, self.index, now_s);
                self.plane.on_sample_observed(
                    &sample,
                    &mut PlatformActuators { node: &mut self.node, binding: &mut self.binding },
                    &mut obs,
                )
            }
        };
        // Daemon-confirmed frequency changes are trace events; frequencies
        // forced by a failsafe engagement are not (they bypass the driver).
        if let Some(mhz) = out.freq_mhz {
            if self.rec.enabled {
                self.rec.freq_events.push((now_s, mhz));
            }
        }

        // Read the two summary inputs directly; a full `node.state()`
        // snapshot recomputes the wall-power law per sample, which the
        // recording-off fast path never uses.
        let duty = f64::from(self.node.fan().duty().percent());
        if let Some(t) = temp {
            self.rec.temp_stats.push(t);
        }
        self.rec.duty_stats.push(duty);
        if self.rec.enabled {
            if let Some(t) = temp {
                self.rec.temp.push(now_s, t);
            }
            self.rec.duty.push(now_s, duty);
            self.rec.freq.push(now_s, f64::from(self.node.requested_frequency_khz() / 1000));
            self.rec.power.push(now_s, self.node.wall_power_w());
            self.rec.util.push(now_s, self.node.utilization());
        }
    }

    /// The duty the fan daemon currently commands (for diagnostics).
    pub fn commanded_duty(&self) -> u8 {
        self.binding
            .fan_driver()
            .map_or_else(|| self.node.state().fan_duty.percent(), |d| d.last_commanded())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::WorkloadSpec;
    use crate::scheme::{DvfsScheme, FanScheme, SchemeSpec};
    use unitherm_core::control_array::Policy;

    fn scenario_with(fan: FanScheme, dvfs: DvfsScheme) -> Scenario {
        Scenario::new("node-sim-test")
            .with_nodes(1)
            .with_fan(fan)
            .with_dvfs(dvfs)
            .with_workload(WorkloadSpec::CpuBurn)
    }

    /// Drives a lone node for `seconds`.
    fn run(ns: &mut NodeSim, seconds: f64) {
        let dt = 0.05;
        let per_sample = 5; // 0.25 s
        let steps = (seconds / dt).round() as usize;
        for i in 0..steps {
            let _ = ns.tick_workload(dt);
            let now = (i + 1) as f64 * dt;
            ns.tick_hardware(dt, now, None);
            if (i + 1) % per_sample == 0 {
                ns.on_sample(now, None);
            }
        }
    }

    #[test]
    fn chip_auto_needs_no_driver() {
        let sc = scenario_with(FanScheme::ChipAutomatic { max_duty: 75 }, DvfsScheme::None);
        let mut ns = NodeSim::build(&sc, 0);
        run(&mut ns, 120.0);
        // Burn heats the node; the chip's auto curve raises duty but never
        // past the hardware cap.
        let duty = ns.node.state().fan_duty.percent();
        assert!(duty > 10, "auto curve responded: {duty}");
        assert!(duty <= 75);
    }

    #[test]
    fn constant_scheme_pins_duty() {
        let sc = scenario_with(FanScheme::Constant { duty: 75 }, DvfsScheme::None);
        let mut ns = NodeSim::build(&sc, 0);
        run(&mut ns, 60.0);
        assert_eq!(ns.node.state().fan_duty.percent(), 75);
        assert_eq!(ns.commanded_duty(), 75);
    }

    #[test]
    fn dynamic_scheme_raises_duty_under_burn() {
        let sc = scenario_with(FanScheme::dynamic(Policy::MODERATE, 100), DvfsScheme::None);
        let mut ns = NodeSim::build(&sc, 0);
        run(&mut ns, 200.0);
        assert!(
            ns.commanded_duty() > 20,
            "dynamic controller should have engaged: {}",
            ns.commanded_duty()
        );
    }

    #[test]
    fn static_software_follows_temperature() {
        let sc = scenario_with(
            FanScheme::SoftwareStatic {
                curve: unitherm_core::baseline::StaticFanCurve::with_max(75),
            },
            DvfsScheme::None,
        );
        let mut ns = NodeSim::build(&sc, 0);
        run(&mut ns, 200.0);
        let temp = ns.node.die_temp_c();
        let expected = unitherm_core::baseline::StaticFanCurve::with_max(75).duty_for(temp);
        let actual = ns.commanded_duty();
        assert!(
            (i32::from(actual) - i32::from(expected)).abs() <= 6,
            "static daemon tracks the curve: {actual} vs {expected} at {temp}°C"
        );
    }

    #[test]
    fn cpuspeed_daemon_changes_frequencies() {
        let sc = scenario_with(FanScheme::ChipAutomatic { max_duty: 100 }, DvfsScheme::cpuspeed());
        let mut ns = NodeSim::build(&sc, 0);
        run(&mut ns, 250.0);
        // Burn alternates bursts and gaps; the governor must have reacted.
        assert!(
            ns.node.cpu().freq_transition_count() > 0,
            "CPUSPEED should transition on burn gaps"
        );
        assert!(!ns.rec.freq_events.is_empty());
    }

    #[test]
    fn tdvfs_daemon_scales_when_fan_capped() {
        let sc = scenario_with(
            FanScheme::dynamic(Policy::MODERATE, 20),
            DvfsScheme::tdvfs(Policy::MODERATE),
        );
        let mut ns = NodeSim::build(&sc, 0);
        run(&mut ns, 280.0);
        // A 20 %-capped fan cannot hold burn below 51 °C, so tDVFS must have
        // scaled down at least once (it may legitimately have restored the
        // original frequency during a burn gap by the end of the run).
        assert!(ns.node.cpu().freq_transition_count() > 0, "tDVFS never engaged");
        assert!(
            ns.rec.freq_events.iter().any(|&(_, f)| f < 2400),
            "no scale-down recorded: {:?}",
            ns.rec.freq_events
        );
    }

    #[test]
    fn hybrid_scheme_runs_from_a_scenario() {
        let sc = scenario_with(FanScheme::ChipAutomatic { max_duty: 100 }, DvfsScheme::None)
            .with_scheme(SchemeSpec::hybrid(Policy::MODERATE, 20));
        let mut ns = NodeSim::build(&sc, 0);
        assert_eq!(ns.plane.labels(), vec!["dynamic-fan", "tdvfs"]);
        run(&mut ns, 280.0);
        // The capped hybrid fan saturates; coordination hands off to tDVFS.
        assert!(ns.commanded_duty() >= 15, "fan arm engaged: {}", ns.commanded_duty());
        assert!(
            ns.rec.freq_events.iter().any(|&(_, f)| f < 2400),
            "hybrid tDVFS arm never scaled down: {:?}",
            ns.rec.freq_events
        );
    }

    #[test]
    fn acpi_sleep_scheme_gates_the_cpu() {
        let sc = scenario_with(FanScheme::ChipAutomatic { max_duty: 100 }, DvfsScheme::None)
            .with_scheme(SchemeSpec::acpi_sleep(
                Policy::AGGRESSIVE,
                FanScheme::Constant { duty: 10 },
            ));
        let mut ns = NodeSim::build(&sc, 0);
        assert_eq!(ns.plane.labels(), vec!["constant-fan", "acpi-sleep"]);
        run(&mut ns, 280.0);
        // A 10 % fan cannot hold burn temperatures; the sleep controller
        // must have stepped out of C0 at some point.
        let daemon = ns
            .plane
            .daemon::<unitherm_core::control_plane::AcpiSleepDaemon>()
            .expect("sleep daemon attached");
        assert!(daemon.controller().stats().rounds > 0, "controller observed samples");
        assert!(
            ns.node.cpu().sleep_gate() < 1.0
                || daemon.current_state() != unitherm_core::acpi::SleepState::C0,
            "sleep controller never left C0 under a starved fan"
        );
    }

    #[test]
    fn recorder_captures_all_series() {
        let sc = scenario_with(FanScheme::ChipAutomatic { max_duty: 100 }, DvfsScheme::None);
        let mut ns = NodeSim::build(&sc, 0);
        run(&mut ns, 10.0);
        assert_eq!(ns.rec.temp.len(), 40);
        assert_eq!(ns.rec.duty.len(), 40);
        assert_eq!(ns.rec.freq.len(), 40);
        assert_eq!(ns.rec.power.len(), 40);
        assert_eq!(ns.rec.util.len(), 40);
    }

    #[test]
    fn events_and_counters_populate_under_dynamic_control() {
        let sc = scenario_with(FanScheme::dynamic(Policy::MODERATE, 100), DvfsScheme::None);
        let mut ns = NodeSim::build(&sc, 0);
        run(&mut ns, 200.0);
        assert!(ns.counters.samples > 0);
        assert!(ns.counters.events_emitted > 0, "dynamic fan must emit mode changes");
        assert!(
            ns.counters.l1_decisions + ns.counters.l2_fallbacks > 0,
            "window decisions counted"
        );
        assert!(!ns.events.is_empty());
        assert!(ns.events.iter().all(|r| r.node == 0));
    }

    #[test]
    fn journal_receives_teed_events() {
        let sc = scenario_with(FanScheme::dynamic(Policy::MODERATE, 100), DvfsScheme::None);
        let mut ns = NodeSim::build(&sc, 0);
        let mut journal = unitherm_obs::VecSink::default();
        let dt = 0.05;
        for i in 0..4000usize {
            let _ = ns.tick_workload(dt);
            let now = (i + 1) as f64 * dt;
            ns.tick_hardware(dt, now, Some(&mut journal));
            if (i + 1) % 5 == 0 {
                ns.on_sample(now, Some(&mut journal));
            }
        }
        assert!(!journal.records.is_empty(), "journal captured the stream");
        assert_eq!(journal.records.len() as u64, ns.counters.events_emitted);
    }

    #[test]
    fn recording_can_be_disabled() {
        let sc = scenario_with(FanScheme::ChipAutomatic { max_duty: 100 }, DvfsScheme::None)
            .with_recording(false);
        let mut ns = NodeSim::build(&sc, 0);
        run(&mut ns, 10.0);
        assert!(ns.rec.temp.is_empty());
    }
}
