//! Per-node simulation state: hardware, drivers, daemons, recorders.

use unitherm_core::actuator::FreqMhz;
use unitherm_core::failsafe::{Failsafe, FailsafeAction};
use unitherm_core::fan_control::DynamicFanController;
use unitherm_core::feedforward::FeedforwardFanController;
use unitherm_core::governor::CpuSpeedGovernor;
use unitherm_core::tdvfs::Tdvfs;
use unitherm_hwmon::{CpufreqDriver, FanDriver, LmSensors};
use unitherm_metrics::{RunningStats, TimeSeries};
use unitherm_simnode::faults::FaultPlan;
use unitherm_simnode::Node;
use unitherm_workload::{WorkState, Workload};

use crate::scenario::Scenario;
use crate::scheme::{DvfsScheme, FanScheme};

/// The fan-side daemon attached to a node.
pub enum FanDaemon {
    /// Chip automatic mode: no software in the loop.
    ChipAuto,
    /// Software static-curve daemon through the manual-mode driver.
    Static {
        /// The curve to evaluate each sample.
        curve: unitherm_core::baseline::StaticFanCurve,
        /// The manual-mode driver.
        driver: FanDriver,
    },
    /// Constant duty (applied once at attach time).
    Constant {
        /// The pinned duty.
        duty: u8,
        /// Driver retained to keep the chip in manual mode.
        driver: FanDriver,
    },
    /// The paper's dynamic history-based controller.
    Dynamic {
        /// The controller.
        controller: DynamicFanController,
        /// The manual-mode driver.
        driver: FanDriver,
    },
    /// The feedforward-augmented dynamic controller (§5 future work).
    DynamicFeedforward {
        /// The controller (consumes temperature and utilization).
        controller: FeedforwardFanController,
        /// The manual-mode driver.
        driver: FanDriver,
    },
}

/// The DVFS-side daemon attached to a node.
pub enum DvfsDaemon {
    /// No frequency management.
    None,
    /// The temperature-aware tDVFS daemon.
    Tdvfs {
        /// The daemon.
        daemon: Tdvfs,
        /// The cpufreq driver.
        driver: CpufreqDriver,
    },
    /// The CPUSPEED utilization governor.
    CpuSpeed {
        /// The governor.
        governor: CpuSpeedGovernor,
        /// The cpufreq driver.
        driver: CpufreqDriver,
    },
}

/// Recorded traces and counters for one node.
pub struct NodeRecorder {
    /// Sensor temperature (°C) at each sample.
    pub temp: TimeSeries,
    /// Commanded fan duty (%) at each sample.
    pub duty: TimeSeries,
    /// Requested CPU frequency (MHz) at each sample.
    pub freq: TimeSeries,
    /// Instantaneous wall power (W) at each sample.
    pub power: TimeSeries,
    /// CPU utilization at each sample.
    pub util: TimeSeries,
    /// Frequency-change events: `(time, new MHz)`.
    pub freq_events: Vec<(f64, FreqMhz)>,
    /// Whether series recording is enabled.
    pub enabled: bool,
    /// Streaming temperature statistics (kept even when series recording is
    /// off, so benchmark-mode runs still report averages).
    pub temp_stats: RunningStats,
    /// Streaming commanded-duty statistics.
    pub duty_stats: RunningStats,
}

impl NodeRecorder {
    fn new(node_idx: usize, enabled: bool) -> Self {
        let n = |metric: &str| format!("node{node_idx}.{metric}");
        Self {
            temp: TimeSeries::new(n("temp"), "°C"),
            duty: TimeSeries::new(n("duty"), "%"),
            freq: TimeSeries::new(n("freq"), "MHz"),
            power: TimeSeries::new(n("power"), "W"),
            util: TimeSeries::new(n("util"), ""),
            freq_events: Vec::new(),
            enabled,
            temp_stats: RunningStats::new(),
            duty_stats: RunningStats::new(),
        }
    }
}

/// One node's full simulation state.
pub struct NodeSim {
    /// The simulated hardware.
    pub node: Node,
    /// The rank's workload.
    pub workload: Box<dyn Workload>,
    /// lm-sensors access.
    pub lm: LmSensors,
    /// Fan-side daemon.
    pub fan_daemon: FanDaemon,
    /// DVFS-side daemon.
    pub dvfs_daemon: DvfsDaemon,
    /// Trace recorder.
    pub rec: NodeRecorder,
    /// Optional failsafe watchdog.
    pub failsafe: Option<Failsafe>,
    /// Wall-clock second at which this rank's workload finished.
    pub finish_time_s: Option<f64>,
}

impl NodeSim {
    /// Builds one node per the scenario.
    pub fn build(scenario: &Scenario, node_idx: usize) -> Self {
        let seed = scenario.node_seed(node_idx);
        let faults = scenario
            .faults
            .iter()
            .find(|(n, _)| *n == node_idx)
            .map(|(_, p)| p.clone())
            .unwrap_or_else(FaultPlan::none);
        let mut node =
            Node::with_faults(scenario.node_config_for(node_idx).clone(), seed, faults);
        let workload = scenario.workload.instantiate(node_idx, scenario.seed);

        let fan_daemon = match scenario.fan_for(node_idx) {
            FanScheme::ChipAutomatic { max_duty } => {
                // Cap the automatic curve in hardware, stay in auto mode.
                node.smbus_write(
                    unitherm_simnode::node::ADT7467_ADDR,
                    unitherm_simnode::adt7467::regs::PWM_MAX,
                    unitherm_simnode::units::DutyCycle::new(*max_duty).to_register(),
                )
                .expect("chip reachable at build time");
                FanDaemon::ChipAuto
            }
            FanScheme::SoftwareStatic { curve } => {
                let mut driver = FanDriver::probe_at(
                    &mut node,
                    unitherm_simnode::node::ADT7467_ADDR,
                    curve.pwm_max,
                )
                .expect("chip reachable at build time");
                let duty = curve.duty_for(node.die_temp_c());
                driver.set_duty(&mut node, duty).expect("initial duty");
                FanDaemon::Static { curve: *curve, driver }
            }
            FanScheme::Constant { duty } => {
                let mut driver =
                    FanDriver::probe(&mut node).expect("chip reachable at build time");
                driver.set_duty(&mut node, *duty).expect("constant duty");
                FanDaemon::Constant { duty: *duty, driver }
            }
            FanScheme::Dynamic { policy, max_duty, config } => {
                let mut driver = FanDriver::probe_at(
                    &mut node,
                    unitherm_simnode::node::ADT7467_ADDR,
                    *max_duty,
                )
                .expect("chip reachable at build time");
                let controller = DynamicFanController::new(*policy, *max_duty, *config);
                driver
                    .set_duty(&mut node, controller.current_duty())
                    .expect("initial duty");
                FanDaemon::Dynamic { controller, driver }
            }
            FanScheme::DynamicFeedforward { policy, max_duty, config, feedforward } => {
                let mut driver = FanDriver::probe_at(
                    &mut node,
                    unitherm_simnode::node::ADT7467_ADDR,
                    *max_duty,
                )
                .expect("chip reachable at build time");
                let controller =
                    FeedforwardFanController::new(*policy, *max_duty, *config, *feedforward);
                driver
                    .set_duty(&mut node, controller.current_duty())
                    .expect("initial duty");
                FanDaemon::DynamicFeedforward { controller, driver }
            }
        };

        let dvfs_daemon = match &scenario.dvfs {
            DvfsScheme::None => DvfsDaemon::None,
            DvfsScheme::Tdvfs { policy, config } => {
                let driver = CpufreqDriver::probe(&node);
                let freqs = driver.available_mhz().to_vec();
                DvfsDaemon::Tdvfs { daemon: Tdvfs::new(&freqs, *policy, *config), driver }
            }
            DvfsScheme::CpuSpeed { config } => {
                let driver = CpufreqDriver::probe(&node);
                let freqs = driver.available_mhz().to_vec();
                DvfsDaemon::CpuSpeed {
                    governor: CpuSpeedGovernor::new(&freqs, *config),
                    driver,
                }
            }
        };

        Self {
            node,
            workload,
            lm: LmSensors::new(),
            fan_daemon,
            dvfs_daemon,
            rec: NodeRecorder::new(node_idx, scenario.record_series),
            failsafe: scenario.failsafe.map(Failsafe::new),
            finish_time_s: None,
        }
    }

    /// Forces maximum cooling: full allowed fan duty and the lowest
    /// frequency, regardless of which daemons are attached.
    fn force_max_cooling(&mut self) {
        match &mut self.fan_daemon {
            FanDaemon::ChipAuto => {
                // Take the chip into manual mode at full duty; the release
                // path returns it to automatic.
                let _ = self.node.smbus_write(
                    unitherm_simnode::node::ADT7467_ADDR,
                    unitherm_simnode::adt7467::regs::PWM_CONFIG,
                    1,
                );
                let _ = self.node.smbus_write(
                    unitherm_simnode::node::ADT7467_ADDR,
                    unitherm_simnode::adt7467::regs::PWM_CURRENT,
                    0xFF,
                );
            }
            FanDaemon::Static { driver, .. }
            | FanDaemon::Constant { driver, .. }
            | FanDaemon::Dynamic { driver, .. }
            | FanDaemon::DynamicFeedforward { driver, .. } => {
                let _ = driver.set_duty(&mut self.node, 100);
            }
        }
        let lowest = *self
            .node
            .available_frequencies_khz()
            .last()
            .expect("P-state ladder is non-empty");
        let _ = self.node.set_frequency_khz(lowest);
    }

    /// Returns control to the normal daemons after a failsafe release:
    /// reapply whatever each daemon currently wants.
    fn restore_daemon_control(&mut self) {
        match &mut self.fan_daemon {
            FanDaemon::ChipAuto => {
                let _ = self.node.smbus_write(
                    unitherm_simnode::node::ADT7467_ADDR,
                    unitherm_simnode::adt7467::regs::PWM_CONFIG,
                    0,
                );
            }
            FanDaemon::Static { curve, driver } => {
                let duty = curve.duty_for(self.node.die_temp_c());
                let _ = driver.set_duty(&mut self.node, duty);
            }
            FanDaemon::Constant { duty, driver } => {
                let duty = *duty;
                let _ = driver.set_duty(&mut self.node, duty);
            }
            FanDaemon::Dynamic { controller, driver } => {
                let _ = driver.set_duty(&mut self.node, controller.current_duty());
            }
            FanDaemon::DynamicFeedforward { controller, driver } => {
                let _ = driver.set_duty(&mut self.node, controller.current_duty());
            }
        }
        let mhz = match &self.dvfs_daemon {
            DvfsDaemon::None => {
                self.node.available_frequencies_khz()[0] / 1000
            }
            DvfsDaemon::Tdvfs { daemon, .. } => daemon.current_frequency_mhz(),
            DvfsDaemon::CpuSpeed { governor, .. } => governor.current_frequency_mhz(),
        };
        let _ = self.node.set_frequency_khz(mhz * 1000);
    }

    /// Advances the workload by one tick and applies its utilization to the
    /// CPU. Returns the rank's state after the tick.
    pub fn tick_workload(&mut self, dt_s: f64) -> WorkState {
        let speed = self.node.speed_factor();
        let out = self.workload.advance(dt_s, speed);
        self.node.set_load(out.utilization, out.activity);
        self.workload.state()
    }

    /// Advances the physics and per-tick daemons (CPUSPEED observes
    /// utilization every tick).
    pub fn tick_hardware(&mut self, dt_s: f64, now_s: f64) {
        let failsafe_engaged = self.failsafe.as_ref().is_some_and(Failsafe::is_engaged);
        if let DvfsDaemon::CpuSpeed { governor, driver } = &mut self.dvfs_daemon {
            let util = self.node.utilization();
            if let Some(mhz) = governor.observe(dt_s, util) {
                if !failsafe_engaged
                    && driver.set_mhz(&mut self.node, mhz).unwrap_or(false)
                    && self.rec.enabled
                {
                    self.rec.freq_events.push((now_s, mhz));
                }
            }
        }
        self.node.tick(dt_s);
    }

    /// Runs the 4 Hz sampling path: read the sensor, run the failsafe
    /// watchdog, feed the controllers, apply decisions through the drivers
    /// (unless the failsafe owns the actuators), record traces.
    pub fn on_sample(&mut self, now_s: f64) {
        // Hottest-sensor read. `fresh` distinguishes a live reading from
        // the stale fallback the controllers tolerate — the failsafe cares
        // about the difference.
        let fresh = self.lm.read_hottest_celsius(&mut self.node).ok();
        let temp = fresh.or_else(|| {
            self.lm.last_good().map(unitherm_simnode::units::MilliCelsius::to_celsius)
        });

        if let Some(fs) = &mut self.failsafe {
            match fs.observe(fresh) {
                Some(FailsafeAction::Engage(_)) => self.force_max_cooling(),
                Some(FailsafeAction::Release) => self.restore_daemon_control(),
                None => {}
            }
        }
        let failsafe_engaged = self.failsafe.as_ref().is_some_and(Failsafe::is_engaged);

        if let Some(t) = temp {
            // Daemons keep observing (their state must stay current), but
            // while the failsafe owns the actuators their decisions are
            // not applied.
            match &mut self.fan_daemon {
                FanDaemon::ChipAuto | FanDaemon::Constant { .. } => {}
                FanDaemon::Static { curve, driver } => {
                    let duty = curve.duty_for(t);
                    if !failsafe_engaged && duty != driver.last_commanded() {
                        let _ = driver.set_duty(&mut self.node, duty);
                    }
                }
                FanDaemon::Dynamic { controller, driver } => {
                    if let Some(decision) = controller.observe(t) {
                        if !failsafe_engaged {
                            let _ = driver.set_duty(&mut self.node, decision.mode);
                        }
                    }
                }
                FanDaemon::DynamicFeedforward { controller, driver } => {
                    let util = self.node.utilization();
                    if let Some(decision) = controller.observe(t, util) {
                        if !failsafe_engaged {
                            let _ = driver.set_duty(&mut self.node, decision.mode);
                        }
                    }
                }
            }
            if let DvfsDaemon::Tdvfs { daemon, driver } = &mut self.dvfs_daemon {
                if let Some(event) = daemon.observe(t) {
                    let mhz = event.frequency_mhz();
                    if !failsafe_engaged
                        && driver.set_mhz(&mut self.node, mhz).unwrap_or(false)
                        && self.rec.enabled
                    {
                        self.rec.freq_events.push((now_s, mhz));
                    }
                }
            }
        }

        let s = self.node.state();
        if let Some(t) = temp {
            self.rec.temp_stats.push(t);
        }
        self.rec.duty_stats.push(f64::from(s.fan_duty.percent()));
        if self.rec.enabled {
            if let Some(t) = temp {
                self.rec.temp.push(now_s, t);
            }
            self.rec.duty.push(now_s, f64::from(s.fan_duty.percent()));
            self.rec.freq.push(now_s, f64::from(self.node.requested_frequency_khz() / 1000));
            self.rec.power.push(now_s, s.wall_power_w);
            self.rec.util.push(now_s, s.utilization);
        }
    }

    /// The duty the fan daemon currently commands (for diagnostics).
    pub fn commanded_duty(&self) -> u8 {
        match &self.fan_daemon {
            FanDaemon::ChipAuto => self.node.state().fan_duty.percent(),
            FanDaemon::Static { driver, .. }
            | FanDaemon::Constant { driver, .. }
            | FanDaemon::Dynamic { driver, .. }
            | FanDaemon::DynamicFeedforward { driver, .. } => driver.last_commanded(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::WorkloadSpec;
    use unitherm_core::control_array::Policy;

    fn scenario_with(fan: FanScheme, dvfs: DvfsScheme) -> Scenario {
        Scenario::new("node-sim-test")
            .with_nodes(1)
            .with_fan(fan)
            .with_dvfs(dvfs)
            .with_workload(WorkloadSpec::CpuBurn)
    }

    /// Drives a lone node for `seconds`.
    fn run(ns: &mut NodeSim, seconds: f64) {
        let dt = 0.05;
        let per_sample = 5; // 0.25 s
        let steps = (seconds / dt).round() as usize;
        for i in 0..steps {
            let _ = ns.tick_workload(dt);
            let now = (i + 1) as f64 * dt;
            ns.tick_hardware(dt, now);
            if (i + 1) % per_sample == 0 {
                ns.on_sample(now);
            }
        }
    }

    #[test]
    fn chip_auto_needs_no_driver() {
        let sc = scenario_with(FanScheme::ChipAutomatic { max_duty: 75 }, DvfsScheme::None);
        let mut ns = NodeSim::build(&sc, 0);
        run(&mut ns, 120.0);
        // Burn heats the node; the chip's auto curve raises duty but never
        // past the hardware cap.
        let duty = ns.node.state().fan_duty.percent();
        assert!(duty > 10, "auto curve responded: {duty}");
        assert!(duty <= 75);
    }

    #[test]
    fn constant_scheme_pins_duty() {
        let sc = scenario_with(FanScheme::Constant { duty: 75 }, DvfsScheme::None);
        let mut ns = NodeSim::build(&sc, 0);
        run(&mut ns, 60.0);
        assert_eq!(ns.node.state().fan_duty.percent(), 75);
        assert_eq!(ns.commanded_duty(), 75);
    }

    #[test]
    fn dynamic_scheme_raises_duty_under_burn() {
        let sc = scenario_with(FanScheme::dynamic(Policy::MODERATE, 100), DvfsScheme::None);
        let mut ns = NodeSim::build(&sc, 0);
        run(&mut ns, 200.0);
        assert!(
            ns.commanded_duty() > 20,
            "dynamic controller should have engaged: {}",
            ns.commanded_duty()
        );
    }

    #[test]
    fn static_software_follows_temperature() {
        let sc = scenario_with(
            FanScheme::SoftwareStatic {
                curve: unitherm_core::baseline::StaticFanCurve::with_max(75),
            },
            DvfsScheme::None,
        );
        let mut ns = NodeSim::build(&sc, 0);
        run(&mut ns, 200.0);
        let temp = ns.node.die_temp_c();
        let expected = unitherm_core::baseline::StaticFanCurve::with_max(75).duty_for(temp);
        let actual = ns.commanded_duty();
        assert!(
            (i32::from(actual) - i32::from(expected)).abs() <= 6,
            "static daemon tracks the curve: {actual} vs {expected} at {temp}°C"
        );
    }

    #[test]
    fn cpuspeed_daemon_changes_frequencies() {
        let sc = scenario_with(
            FanScheme::ChipAutomatic { max_duty: 100 },
            DvfsScheme::cpuspeed(),
        );
        let mut ns = NodeSim::build(&sc, 0);
        run(&mut ns, 250.0);
        // Burn alternates bursts and gaps; the governor must have reacted.
        assert!(
            ns.node.cpu().freq_transition_count() > 0,
            "CPUSPEED should transition on burn gaps"
        );
        assert!(!ns.rec.freq_events.is_empty());
    }

    #[test]
    fn tdvfs_daemon_scales_when_fan_capped() {
        let sc = scenario_with(
            FanScheme::dynamic(Policy::MODERATE, 20),
            DvfsScheme::tdvfs(Policy::MODERATE),
        );
        let mut ns = NodeSim::build(&sc, 0);
        run(&mut ns, 280.0);
        // A 20 %-capped fan cannot hold burn below 51 °C, so tDVFS must have
        // scaled down at least once (it may legitimately have restored the
        // original frequency during a burn gap by the end of the run).
        assert!(
            ns.node.cpu().freq_transition_count() > 0,
            "tDVFS never engaged"
        );
        assert!(
            ns.rec.freq_events.iter().any(|&(_, f)| f < 2400),
            "no scale-down recorded: {:?}",
            ns.rec.freq_events
        );
    }

    #[test]
    fn recorder_captures_all_series() {
        let sc = scenario_with(FanScheme::ChipAutomatic { max_duty: 100 }, DvfsScheme::None);
        let mut ns = NodeSim::build(&sc, 0);
        run(&mut ns, 10.0);
        assert_eq!(ns.rec.temp.len(), 40);
        assert_eq!(ns.rec.duty.len(), 40);
        assert_eq!(ns.rec.freq.len(), 40);
        assert_eq!(ns.rec.power.len(), 40);
        assert_eq!(ns.rec.util.len(), 40);
    }

    #[test]
    fn recording_can_be_disabled() {
        let sc = scenario_with(FanScheme::ChipAutomatic { max_duty: 100 }, DvfsScheme::None)
            .with_recording(false);
        let mut ns = NodeSim::build(&sc, 0);
        run(&mut ns, 10.0);
        assert!(ns.rec.temp.is_empty());
    }
}
