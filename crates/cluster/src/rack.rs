//! Rack-level ambient coupling: the shared-air model behind the paper's
//! hot-spot motivation.
//!
//! The paper's introduction: *"hot spots or pockets of elevated
//! temperatures on the chips and system can be easily formed when room air
//! circulation is not effective."* With per-node models alone, each node
//! breathes constant-temperature air; this module closes the loop: a
//! fraction of every node's exhaust heat recirculates into the rack's
//! intake volume, which the room's CRAC flushes at a finite rate:
//!
//! ```text
//!   C_air · dT_air/dt = r · ΣQ_node − G_crac · (T_air − T_supply)
//! ```
//!
//! Poor circulation (small `G_crac`) lets the intake air ride up several
//! degrees under load — every node's operating point shifts with it, and
//! nodes' thermal fates become coupled through the air exactly as in a
//! dense rack.

use serde::{Deserialize, Serialize};

/// Rack air-volume parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RackConfig {
    /// Thermal capacity of the rack's intake air volume, J/K.
    pub air_capacity_j_per_k: f64,
    /// CRAC supply-air temperature, °C.
    pub supply_air_c: f64,
    /// Conductance between rack air and the CRAC supply, W/K — the "room
    /// air circulation effectiveness" knob. Large = well-ventilated aisle;
    /// small = a hot pocket forms.
    pub crac_conductance_w_per_k: f64,
    /// Fraction of node exhaust heat that recirculates into the intake.
    pub recirculation_fraction: f64,
}

impl Default for RackConfig {
    fn default() -> Self {
        Self {
            air_capacity_j_per_k: 800.0,
            supply_air_c: 18.0,
            crac_conductance_w_per_k: 40.0,
            recirculation_fraction: 0.25,
        }
    }
}

impl RackConfig {
    /// A poorly ventilated rack: the configuration under which hot pockets
    /// form (CRAC conductance cut 4×).
    pub fn poor_circulation() -> Self {
        Self { crac_conductance_w_per_k: 10.0, ..Default::default() }
    }

    /// Validates the configuration.
    ///
    /// # Panics
    /// Panics on non-positive capacity/conductance or a recirculation
    /// fraction outside `[0, 1]`.
    pub fn validate(&self) {
        assert!(self.air_capacity_j_per_k > 0.0, "air capacity must be positive");
        assert!(self.crac_conductance_w_per_k > 0.0, "CRAC conductance must be positive");
        assert!(
            (0.0..=1.0).contains(&self.recirculation_fraction),
            "recirculation fraction must be in [0, 1]"
        );
    }

    /// Steady-state intake-air temperature for a given recirculated heat
    /// load, °C.
    pub fn steady_air_c(&self, total_node_heat_w: f64) -> f64 {
        self.supply_air_c
            + self.recirculation_fraction * total_node_heat_w / self.crac_conductance_w_per_k
    }
}

/// The rack air state.
#[derive(Debug, Clone)]
pub struct RackModel {
    cfg: RackConfig,
    air_c: f64,
}

impl RackModel {
    /// Creates the rack with intake air at the steady state for the given
    /// initial heat load (idle nodes).
    pub fn new(cfg: RackConfig, initial_heat_w: f64) -> Self {
        cfg.validate();
        let air_c = cfg.steady_air_c(initial_heat_w);
        Self { cfg, air_c }
    }

    /// Current intake-air temperature, °C.
    pub fn air_c(&self) -> f64 {
        self.air_c
    }

    /// The configuration.
    pub fn config(&self) -> &RackConfig {
        &self.cfg
    }

    /// Advances the air volume by `dt_s` with the given total node heat.
    pub fn step(&mut self, dt_s: f64, total_node_heat_w: f64) {
        assert!(dt_s > 0.0, "time step must be positive");
        assert!(total_node_heat_w >= 0.0, "heat cannot be negative");
        let inflow = self.cfg.recirculation_fraction * total_node_heat_w;
        let outflow = self.cfg.crac_conductance_w_per_k * (self.air_c - self.cfg.supply_air_c);
        // Exact first-order update toward the instantaneous equilibrium
        // (stable for any dt).
        let target = self.cfg.steady_air_c(total_node_heat_w);
        let tau = self.cfg.air_capacity_j_per_k / self.cfg.crac_conductance_w_per_k;
        let alpha = 1.0 - (-dt_s / tau).exp();
        self.air_c += (target - self.air_c) * alpha;
        debug_assert!(self.air_c.is_finite(), "air temp diverged ({inflow} in, {outflow} out)");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn idle_rack_sits_near_supply_plus_idle_load() {
        let cfg = RackConfig::default();
        // 4 idle nodes ≈ 4 × 45 W: 0.25·180/40 = 1.1 °C above supply.
        let r = RackModel::new(cfg, 180.0);
        assert!((r.air_c() - 19.125).abs() < 1e-9, "air {}", r.air_c());
    }

    #[test]
    fn loaded_rack_air_rises_with_poor_circulation() {
        let good = RackConfig::default();
        let poor = RackConfig::poor_circulation();
        // 4 loaded nodes ≈ 400 W.
        assert!((good.steady_air_c(400.0) - 20.5).abs() < 1e-9);
        assert!((poor.steady_air_c(400.0) - 28.0).abs() < 1e-9);
    }

    #[test]
    fn step_converges_to_steady_state() {
        let mut r = RackModel::new(RackConfig::poor_circulation(), 100.0);
        for _ in 0..10_000 {
            r.step(0.05, 400.0);
        }
        assert!((r.air_c() - 28.0).abs() < 0.05, "air {}", r.air_c());
    }

    #[test]
    fn large_steps_are_stable() {
        let mut r = RackModel::new(RackConfig::default(), 0.0);
        for _ in 0..100 {
            r.step(50.0, 500.0);
            assert!(r.air_c().is_finite());
            assert!(r.air_c() <= RackConfig::default().steady_air_c(500.0) + 1e-6);
        }
    }

    #[test]
    fn air_time_constant_is_tens_of_seconds() {
        // τ = C/G: 800/40 = 20 s (default), 800/10 = 80 s (poor).
        let mut r = RackModel::new(RackConfig::poor_circulation(), 0.0);
        let target = RackConfig::poor_circulation().steady_air_c(400.0);
        r.step(80.0, 400.0); // one τ
        let frac = (r.air_c() - 18.0) / (target - 18.0);
        assert!((frac - 0.632).abs() < 0.01, "after one tau: {frac}");
    }

    #[test]
    #[should_panic(expected = "recirculation")]
    fn bad_fraction_rejected() {
        RackConfig { recirculation_fraction: 1.5, ..Default::default() }.validate();
    }
}
