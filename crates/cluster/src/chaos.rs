//! Adversarial chaos search over deterministic replay.
//!
//! PR 5's replay layer can re-execute a *recorded* fault sequence
//! bit-identically; this module closes the other half of the robustness
//! loop: it *finds* the fault sequences that matter. [`chaos_search`] runs
//! a deterministic, seeded search — random sampling, then greedy
//! hold/magnitude mutation, then window bisection — over tick-addressed
//! fault windows, hunting the **cheapest** sequence that flips a scenario's
//! outcome: a failsafe trip appears, a thermal limit is crossed, an SLA or
//! completion target is missed. Outcomes are expressed as serde-configurable
//! [`OutcomePredicate`]s evaluated from a [`RunReport`], so the same search
//! harness covers every safety property the paper's controllers claim.
//!
//! The evaluation engine is the existing sweep layer
//! ([`try_run_scenarios_parallel`] + [`crate::thread_budget`]): one
//! candidate = one independent scenario job. Because the sweep reassembles
//! results in input order and every simulation is bit-identical at any
//! thread count, the whole search is a pure function of `(scenario, config
//! seed)` — the same seed produces a byte-identical counterexample corpus
//! whether it evaluated on 1 or 16 threads.
//!
//! The product is a ranked, deduplicated [`ChaosCorpus`] (JSON, see
//! `docs/FORMATS.md`): each [`Counterexample`] carries the minimized fault
//! windows, the exact `tick_faults` schedules to install, an outcome
//! summary, and the FNV-1a digest of its replayed report — so
//! `repro run-scenario --replay-faults corpus.json` can re-execute it and
//! prove bit-identity. See `DESIGN.md` §13 for the architecture.

use std::sync::{Arc, Mutex};

use rand::prelude::*;
use unitherm_obs::{Event, EventRecord, EventSink, SearchPhase, VecSink};
use unitherm_simnode::faults::{FaultEvent, TickFaultSchedule};

use crate::report::RunReport;
use crate::scenario::{Scenario, ScenarioError};
use crate::sim::Simulation;
use crate::sweep::try_run_scenarios_parallel;

/// A scenario outcome the search tries to flip, evaluated from a
/// [`RunReport`]. Serde-configurable so corpora and CLI flags can name the
/// property under attack.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub enum OutcomePredicate {
    /// The failsafe watchdog engaged on any node.
    FailsafeTrip,
    /// Some node exceeded the given die-temperature limit, °C.
    ThermalLimit {
        /// The limit, °C.
        limit_c: f64,
    },
    /// Some node crossed the shutdown threshold.
    Shutdown,
    /// The job did not complete within the scenario time limit.
    CompletionMiss,
    /// The job missed its SLA: it did not complete, or completed later
    /// than the given execution-time bound, seconds.
    SlaMiss {
        /// The execution-time bound, s.
        max_exec_time_s: f64,
    },
    /// Any of the inner predicates holds.
    AnyOf(Vec<OutcomePredicate>),
}

impl OutcomePredicate {
    /// Evaluates the predicate against a finished run.
    pub fn holds(&self, report: &RunReport) -> bool {
        match self {
            OutcomePredicate::FailsafeTrip => {
                report.nodes.iter().any(|n| n.failsafe_engagements > 0)
            }
            OutcomePredicate::ThermalLimit { limit_c } => report.max_temp_c() > *limit_c,
            OutcomePredicate::Shutdown => report.any_shutdown(),
            OutcomePredicate::CompletionMiss => !report.completed,
            OutcomePredicate::SlaMiss { max_exec_time_s } => {
                !report.completed || report.exec_time_s > *max_exec_time_s
            }
            OutcomePredicate::AnyOf(inner) => inner.iter().any(|p| p.holds(report)),
        }
    }
}

/// The fault vocabulary the search draws windows from. Every kind is a
/// paired injection/recovery, so candidates are always bounded windows —
/// the search minimizes *how little* misbehavior flips the outcome, and a
/// permanent fault has no cost to shrink.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum AttackKind {
    /// Sensor blackout: [`FaultEvent::SensorDropout`] → `SensorRestore`.
    SensorDropout,
    /// Wedged fan output stage: [`FaultEvent::PwmStuck`] → `PwmRelease`.
    PwmStuck,
    /// Degraded sensing path: [`FaultEvent::SensorJitter`] (the window's
    /// magnitude is the extra std-dev, °C) → `SensorJitter(0.0)`.
    SensorJitter,
    /// Seized rotor: [`FaultEvent::FanFailure`] → `FanRepair`.
    FanFailure,
}

impl AttackKind {
    fn inject(self, magnitude: f64) -> FaultEvent {
        match self {
            AttackKind::SensorDropout => FaultEvent::SensorDropout,
            AttackKind::PwmStuck => FaultEvent::PwmStuck,
            AttackKind::SensorJitter => FaultEvent::SensorJitter(magnitude),
            AttackKind::FanFailure => FaultEvent::FanFailure,
        }
    }

    fn recover(self) -> FaultEvent {
        match self {
            AttackKind::SensorDropout => FaultEvent::SensorRestore,
            AttackKind::PwmStuck => FaultEvent::PwmRelease,
            AttackKind::SensorJitter => FaultEvent::SensorJitter(0.0),
            AttackKind::FanFailure => FaultEvent::FanRepair,
        }
    }
}

const ALL_KINDS: [AttackKind; 4] = [
    AttackKind::SensorDropout,
    AttackKind::PwmStuck,
    AttackKind::SensorJitter,
    AttackKind::FanFailure,
];

/// One bounded fault window in a candidate: `kind` is injected on `node` at
/// `start_tick` and recovered `hold_ticks` later.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct FaultWindow {
    /// Target node index.
    pub node: usize,
    /// Injection tick (1-based, like all tick faults).
    pub start_tick: u64,
    /// Ticks until the paired recovery.
    pub hold_ticks: u64,
    /// What is injected.
    pub kind: AttackKind,
    /// Kind-specific magnitude ([`AttackKind::SensorJitter`]'s extra
    /// std-dev, °C; 0 for the on/off kinds). Always finite and
    /// non-negative — the mutation ops only ever shrink it.
    pub magnitude: f64,
}

/// Tuning for [`chaos_search`]. Everything that shapes the search is here,
/// so a corpus records enough to reproduce itself.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct ChaosConfig {
    /// Seed for the search's own RNG (candidate sampling); independent of
    /// the scenario's physics seed.
    #[serde(default = "default_seed")]
    pub seed: u64,
    /// The outcome to flip.
    #[serde(default = "default_predicate")]
    pub predicate: OutcomePredicate,
    /// Total simulation-run budget, including the baseline run.
    #[serde(default = "default_max_evaluations")]
    pub max_evaluations: usize,
    /// Candidates evaluated per sampling round (one parallel sweep).
    #[serde(default = "default_batch")]
    pub batch: usize,
    /// Worker threads for candidate evaluation; 0 = all available cores.
    /// Changes wall-clock only, never the corpus.
    #[serde(default)]
    pub threads: usize,
    /// Most fault windows in one sampled candidate.
    #[serde(default = "default_max_windows")]
    pub max_windows: usize,
    /// Sampled hold range, ticks (inclusive).
    #[serde(default = "default_hold_min")]
    pub hold_min_ticks: u64,
    /// Sampled hold range, ticks (inclusive).
    #[serde(default = "default_hold_max")]
    pub hold_max_ticks: u64,
    /// Largest sampled jitter magnitude, °C std-dev.
    #[serde(default = "default_jitter_max")]
    pub jitter_max_std_c: f64,
    /// Counterexamples kept in the ranked corpus.
    #[serde(default = "default_max_corpus")]
    pub max_corpus: usize,
}

fn default_seed() -> u64 {
    0xC0FFEE
}
fn default_predicate() -> OutcomePredicate {
    OutcomePredicate::FailsafeTrip
}
fn default_max_evaluations() -> usize {
    96
}
fn default_batch() -> usize {
    8
}
fn default_max_windows() -> usize {
    3
}
fn default_hold_min() -> u64 {
    20
}
fn default_hold_max() -> u64 {
    400
}
fn default_jitter_max() -> f64 {
    8.0
}
fn default_max_corpus() -> usize {
    8
}

impl Default for ChaosConfig {
    fn default() -> Self {
        Self {
            seed: default_seed(),
            predicate: default_predicate(),
            max_evaluations: default_max_evaluations(),
            batch: default_batch(),
            threads: 0,
            max_windows: default_max_windows(),
            hold_min_ticks: default_hold_min(),
            hold_max_ticks: default_hold_max(),
            jitter_max_std_c: default_jitter_max(),
            max_corpus: default_max_corpus(),
        }
    }
}

/// Why a chaos search could not run.
#[derive(Debug, Clone, PartialEq)]
pub enum ChaosError {
    /// The base scenario fails validation.
    InvalidScenario(ScenarioError),
    /// The search configuration is unusable (empty budget, inverted hold
    /// range, …).
    InvalidConfig(String),
}

impl std::fmt::Display for ChaosError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ChaosError::InvalidScenario(e) => write!(f, "chaos search: unusable scenario: {e}"),
            ChaosError::InvalidConfig(msg) => write!(f, "chaos search: bad config: {msg}"),
        }
    }
}

impl std::error::Error for ChaosError {}

/// Outcome facts for one counterexample, so a corpus reads without
/// re-running anything.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct OutcomeSummary {
    /// The predicate's value under this candidate (the baseline holds the
    /// opposite value — that is what "flipped" means).
    pub predicate_holds: bool,
    /// Did the job complete?
    pub completed: bool,
    /// Execution time, s.
    pub exec_time_s: f64,
    /// Hottest die temperature, °C.
    pub max_temp_c: f64,
    /// Total failsafe engagements across the cluster.
    pub failsafe_engagements: u64,
    /// Did any node shut down?
    pub any_shutdown: bool,
}

/// One minimized, outcome-flipping fault sequence.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct Counterexample {
    /// Search cost: total faulted ticks + window count. The corpus is
    /// ranked by this, cheapest first.
    pub cost: u64,
    /// Sum of the windows' hold ticks.
    pub faulted_ticks: u64,
    /// The fault windows, in canonical order.
    pub windows: Vec<FaultWindow>,
    /// The exact per-node schedules to install as `Scenario::tick_faults`
    /// for a bit-identical re-execution.
    pub tick_faults: Vec<(usize, TickFaultSchedule)>,
    /// What the faulted run looked like.
    pub outcome: OutcomeSummary,
    /// FNV-1a 64 digest of the faulted run's serialized report
    /// (`fnv1a64:<16 hex>`); replaying [`Counterexample::tick_faults`] on
    /// the corpus scenario must reproduce it at any thread count.
    pub report_digest: String,
}

/// The ranked, deduplicated product of one [`chaos_search`] run.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct ChaosCorpus {
    /// Format tag: `"unitherm-chaos/v1"`. How tooling distinguishes a
    /// corpus from a JSONL event journal.
    pub schema: String,
    /// Name of the scenario the search attacked.
    pub scenario: String,
    /// The search seed; rerunning with the same scenario + config
    /// reproduces this corpus byte for byte.
    pub seed: u64,
    /// The outcome predicate under attack.
    pub predicate: OutcomePredicate,
    /// The predicate's baseline (fault-free) value.
    pub baseline_holds: bool,
    /// Digest of the baseline report.
    pub baseline_digest: String,
    /// Simulation runs spent, baseline included.
    pub evaluations: u64,
    /// Counterexamples, cheapest first.
    pub counterexamples: Vec<Counterexample>,
}

/// The corpus schema tag.
pub const CHAOS_SCHEMA: &str = "unitherm-chaos/v1";

impl ChaosCorpus {
    /// Installs counterexample `index`'s schedules on a scenario (replacing
    /// its `tick_faults`), for re-execution. Returns `None` when the corpus
    /// has no such entry.
    pub fn apply(&self, scenario: Scenario, index: usize) -> Option<Scenario> {
        let entry = self.counterexamples.get(index)?;
        let mut scenario = scenario;
        scenario.tick_faults = entry.tick_faults.clone();
        Some(scenario)
    }
}

/// FNV-1a 64 digest of a serialized report, rendered `fnv1a64:<16 hex>` —
/// the determinism fingerprint used by the bench gate and chaos corpora.
pub fn report_digest(report: &RunReport) -> String {
    let json = serde_json::to_string(report).expect("reports always serialize");
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in json.as_bytes() {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    format!("fnv1a64:{hash:016x}")
}

/// A thread-safe sink handing the baseline run's journal back to the
/// search (Simulation owns its sink, so shared ownership is the seam).
#[derive(Clone, Default)]
struct SharedSink(Arc<Mutex<VecSink>>);

impl EventSink for SharedSink {
    fn record(&mut self, rec: &EventRecord) {
        self.0.lock().expect("journal sink lock").record(rec);
    }
}

/// Canonical sort key for windows; candidates are kept in this order so
/// structurally equal candidates dedup regardless of sampling order.
fn window_key(w: &FaultWindow) -> (usize, u64, u8, u64, u64) {
    let kind = match w.kind {
        AttackKind::SensorDropout => 0u8,
        AttackKind::PwmStuck => 1,
        AttackKind::SensorJitter => 2,
        AttackKind::FanFailure => 3,
    };
    (w.node, w.start_tick, kind, w.hold_ticks, w.magnitude.to_bits())
}

/// Puts a candidate in canonical form: windows sorted, and overlapping
/// same-kind windows on the same node unioned into one (a second injection
/// inside an open window would otherwise be cancelled early by the first
/// window's recovery).
fn normalize(mut windows: Vec<FaultWindow>) -> Vec<FaultWindow> {
    windows.sort_by_key(window_key);
    let mut out: Vec<FaultWindow> = Vec::with_capacity(windows.len());
    for w in windows {
        if let Some(prev) = out.iter_mut().rev().find(|p| p.node == w.node && p.kind == w.kind) {
            let prev_end = prev.start_tick + prev.hold_ticks;
            if w.start_tick <= prev_end {
                let end = (w.start_tick + w.hold_ticks).max(prev_end);
                prev.hold_ticks = end - prev.start_tick;
                prev.magnitude = prev.magnitude.max(w.magnitude);
                continue;
            }
        }
        out.push(w);
    }
    out
}

/// cost = total faulted ticks + window count: the search minimizes how
/// *little* misbehavior, in how few places, still flips the outcome.
fn cost(windows: &[FaultWindow]) -> u64 {
    windows.iter().map(|w| w.hold_ticks).sum::<u64>() + windows.len() as u64
}

/// Dedup key: the canonical windows, bit-exactly.
fn candidate_key(windows: &[FaultWindow]) -> String {
    let mut key = String::new();
    for w in windows {
        key.push_str(&format!(
            "n{}t{}h{}k{:?}m{:016x};",
            w.node,
            w.start_tick,
            w.hold_ticks,
            w.kind,
            w.magnitude.to_bits()
        ));
    }
    key
}

/// Builds the per-node `tick_faults` schedules for a canonical candidate.
fn to_schedules(windows: &[FaultWindow]) -> Vec<(usize, TickFaultSchedule)> {
    let mut out: Vec<(usize, TickFaultSchedule)> = Vec::new();
    for w in windows {
        let sched = TickFaultSchedule::window(
            w.start_tick.max(1),
            w.hold_ticks,
            w.kind.inject(w.magnitude),
            w.kind.recover(),
        );
        match out.iter_mut().find(|(n, _)| *n == w.node) {
            Some((_, existing)) => existing.merge(&sched),
            None => out.push((w.node, sched)),
        }
    }
    out.sort_by_key(|(n, _)| *n);
    out
}

/// Decision anchors: `(node, tick)` moments where the baseline run made a
/// control decision — the places a fault is most likely to change the
/// outcome (the same insight replay derivation is built on). Falls back to
/// an even grid over the run when the baseline was quiet.
fn anchors_from_journal(records: &[EventRecord], scenario: &Scenario) -> Vec<(usize, u64)> {
    let last_tick = (scenario.max_time_s / scenario.dt_s).round() as u64;
    let mut anchors: Vec<(usize, u64)> = Vec::new();
    for rec in records {
        let interesting = matches!(
            rec.event,
            Event::ModeChange { .. }
                | Event::ThresholdCross { .. }
                | Event::TdvfsEngage { .. }
                | Event::FailsafeTrip { .. }
        );
        let node = rec.node as usize;
        if !interesting || node >= scenario.nodes || !rec.time_s.is_finite() {
            continue;
        }
        let tick = (rec.time_s / scenario.dt_s).round() as u64;
        if tick >= 1 && tick <= last_tick {
            anchors.push((node, tick));
        }
    }
    anchors.sort_unstable();
    anchors.dedup();
    if anchors.len() > 64 {
        // Keep an even spread instead of the earliest prefix.
        let step = anchors.len() as f64 / 64.0;
        anchors = (0..64).map(|i| anchors[(i as f64 * step) as usize]).collect();
        anchors.dedup();
    }
    if anchors.len() < 8 {
        // Quiet baseline: seed an even grid so sampling still has targets.
        for node in 0..scenario.nodes {
            for k in 1..=8u64 {
                let tick = (last_tick * k / 9).max(1);
                anchors.push((node, tick));
            }
        }
        anchors.sort_unstable();
        anchors.dedup();
    }
    anchors
}

/// Samples one candidate: 1..=max_windows windows anchored at recorded
/// decision points, with random kind, hold and (for jitter) magnitude.
fn sample_candidate(
    rng: &mut SmallRng,
    anchors: &[(usize, u64)],
    cfg: &ChaosConfig,
) -> Vec<FaultWindow> {
    let n = rng.gen_range(1..=cfg.max_windows.max(1));
    let mut windows = Vec::with_capacity(n);
    for _ in 0..n {
        let (node, start_tick) = anchors[rng.gen_range(0..anchors.len())];
        let kind = ALL_KINDS[rng.gen_range(0..ALL_KINDS.len())];
        let hold_ticks = rng.gen_range(cfg.hold_min_ticks..=cfg.hold_max_ticks);
        let magnitude = match kind {
            AttackKind::SensorJitter => rng.gen_range(0.5..=cfg.jitter_max_std_c.max(0.5)),
            _ => 0.0,
        };
        windows.push(FaultWindow { node, start_tick, hold_ticks, kind, magnitude });
    }
    normalize(windows)
}

/// Mutation proposals for the minimize phase, cheapest-first greedy:
/// * drop a window entirely (the strongest move);
/// * bisect a window: keep only its first or second half;
/// * shrink a hold to 3/4 (fine-grained convergence between bisections);
/// * halve a jitter magnitude.
///
/// Every proposal is strictly cheaper than `current` or it is not offered.
fn proposals(current: &[FaultWindow]) -> Vec<Vec<FaultWindow>> {
    let mut out = Vec::new();
    let base_cost = cost(current);
    for i in 0..current.len() {
        if current.len() > 1 {
            let mut dropped = current.to_vec();
            dropped.remove(i);
            out.push(normalize(dropped));
        }
        let w = &current[i];
        if w.hold_ticks >= 2 {
            let half = w.hold_ticks / 2;
            let mut first = current.to_vec();
            first[i].hold_ticks = half;
            out.push(normalize(first));
            let mut second = current.to_vec();
            second[i].start_tick = w.start_tick + (w.hold_ticks - half);
            second[i].hold_ticks = half;
            out.push(normalize(second));
            let three_quarters = w.hold_ticks - w.hold_ticks / 4;
            if three_quarters < w.hold_ticks {
                let mut shrunk = current.to_vec();
                shrunk[i].hold_ticks = three_quarters;
                out.push(normalize(shrunk));
            }
        }
        if w.kind == AttackKind::SensorJitter && w.magnitude > 0.5 {
            let mut damped = current.to_vec();
            damped[i].magnitude = (w.magnitude / 2.0).max(0.25);
            out.push(normalize(damped));
        }
    }
    out.retain(|c| !c.is_empty());
    // A magnitude-only mutation keeps the cost equal; allow those, but
    // nothing costlier than the current candidate.
    out.retain(|c| cost(c) <= base_cost);
    // Dedup proposals (bisection of a tiny window degenerates).
    let mut seen = Vec::new();
    out.retain(|c| {
        let k = candidate_key(c);
        if seen.contains(&k) || k == candidate_key(current) {
            false
        } else {
            seen.push(k);
            true
        }
    });
    out
}

/// One found counterexample, pre-ranking.
struct Found {
    windows: Vec<FaultWindow>,
    report: RunReport,
}

/// The search driver state shared across phases.
struct Search<'a> {
    base: &'a Scenario,
    cfg: &'a ChaosConfig,
    threads: usize,
    evaluations: u64,
    baseline_holds: bool,
    /// Found counterexamples keyed canonically; `Found.report` is the run
    /// that proved the flip.
    found: Vec<(String, Found)>,
}

impl Search<'_> {
    /// Evaluates a batch of candidates — one sweep job each — and records
    /// any outcome flips. Returns per-candidate `did it flip`.
    fn evaluate(&mut self, candidates: &[Vec<FaultWindow>]) -> Vec<bool> {
        if candidates.is_empty() {
            return Vec::new();
        }
        let scenarios: Vec<Scenario> = candidates
            .iter()
            .map(|c| {
                let mut s = self.base.clone();
                s.tick_faults = to_schedules(c);
                s
            })
            .collect();
        let results = try_run_scenarios_parallel(scenarios, self.threads);
        self.evaluations += candidates.len() as u64;
        let mut flips = Vec::with_capacity(candidates.len());
        for (candidate, result) in candidates.iter().zip(results) {
            // A candidate that fails to build (job failure) is simply not a
            // counterexample; the search moves on.
            let flipped = match result {
                Ok(report) => {
                    let holds = self.cfg.predicate.holds(&report);
                    if holds != self.baseline_holds {
                        let key = candidate_key(candidate);
                        if !self.found.iter().any(|(k, _)| *k == key) {
                            self.found.push((key, Found { windows: candidate.clone(), report }));
                        }
                        true
                    } else {
                        false
                    }
                }
                Err(_) => false,
            };
            flips.push(flipped);
        }
        flips
    }

    fn best_cost(&self) -> u64 {
        self.found.iter().map(|(_, f)| cost(&f.windows)).min().unwrap_or(u64::MAX)
    }

    fn remaining(&self) -> usize {
        (self.cfg.max_evaluations as u64).saturating_sub(self.evaluations) as usize
    }

    fn progress(&self, sink: &mut dyn EventSink, phase: SearchPhase) {
        sink.record(&EventRecord {
            // Simulated seconds spent, not wall clock: reruns stay
            // bit-identical.
            time_s: self.evaluations as f64 * self.base.max_time_s,
            node: 0,
            event: Event::SearchProgress {
                phase,
                evaluated: self.evaluations.min(u64::from(u32::MAX)) as u32,
                counterexamples: self.found.len().min(u32::MAX as usize) as u32,
                best_cost: self.best_cost(),
            },
        });
    }
}

/// Runs the full search: baseline → seeded random sampling → greedy
/// mutation + window bisection on the cheapest finds → ranked corpus.
///
/// `progress` receives [`Event::SearchProgress`] records after every
/// evaluation round (use a `NullSink` to discard them).
///
/// # Errors
/// [`ChaosError::InvalidScenario`] when the base scenario fails validation,
/// [`ChaosError::InvalidConfig`] for an unusable search configuration.
pub fn chaos_search(
    base: &Scenario,
    cfg: &ChaosConfig,
    progress: &mut dyn EventSink,
) -> Result<ChaosCorpus, ChaosError> {
    base.validate().map_err(ChaosError::InvalidScenario)?;
    if cfg.max_evaluations < 2 {
        return Err(ChaosError::InvalidConfig(
            "max_evaluations must be at least 2 (baseline + one candidate)".into(),
        ));
    }
    if cfg.batch == 0 {
        return Err(ChaosError::InvalidConfig("batch must be at least 1".into()));
    }
    if cfg.hold_min_ticks == 0 || cfg.hold_min_ticks > cfg.hold_max_ticks {
        return Err(ChaosError::InvalidConfig(format!(
            "hold range [{}, {}] is empty or starts at 0",
            cfg.hold_min_ticks, cfg.hold_max_ticks
        )));
    }
    if !cfg.jitter_max_std_c.is_finite() || cfg.jitter_max_std_c < 0.0 {
        return Err(ChaosError::InvalidConfig(
            "jitter_max_std_c must be finite and non-negative".into(),
        ));
    }

    let threads = if cfg.threads == 0 {
        std::thread::available_parallelism().map(|n| n.get()).unwrap_or(4)
    } else {
        cfg.threads
    };

    // Phase 0: baseline run, journal attached — its decision points become
    // the sampling anchors, its predicate value defines "flipped".
    let shared = SharedSink::default();
    let mut sim = Simulation::try_new(base.clone()).map_err(ChaosError::InvalidScenario)?;
    sim.attach_journal(Box::new(shared.clone()));
    let baseline_report = sim.run();
    let baseline_records = shared.0.lock().expect("journal sink lock").records.clone();
    let baseline_holds = cfg.predicate.holds(&baseline_report);
    let baseline_digest = report_digest(&baseline_report);
    let anchors = anchors_from_journal(&baseline_records, base);

    let mut search = Search {
        base,
        cfg,
        threads,
        evaluations: 1, // the baseline
        baseline_holds,
        found: Vec::new(),
    };
    let mut rng = SmallRng::seed_from_u64(cfg.seed);

    // Phase 1: seeded random sampling. Spend up to half the budget (always
    // at least one batch) hunting for any flip at all.
    let sample_budget = (cfg.max_evaluations / 2).max(cfg.batch);
    while search.evaluations < sample_budget as u64 && search.remaining() > 0 {
        let round = cfg.batch.min(search.remaining());
        let batch: Vec<Vec<FaultWindow>> =
            (0..round).map(|_| sample_candidate(&mut rng, &anchors, cfg)).collect();
        search.evaluate(&batch);
        search.progress(progress, SearchPhase::Sample);
        // Enough distinct seeds to minimize? Move on early.
        if search.found.len() >= cfg.max_corpus.max(1) {
            break;
        }
    }

    // Phase 2 + 3: greedy minimize. Take the cheapest finds as seeds; each
    // improvement round proposes hold/magnitude mutations (Mutate) and
    // window drops/bisections (Bisect) together, evaluates them as one
    // sweep, and adopts the cheapest flipping proposal.
    let mut seeds: Vec<Vec<FaultWindow>> =
        search.found.iter().map(|(_, f)| f.windows.clone()).collect();
    seeds.sort_by_key(|w| (cost(w), candidate_key(w)));
    seeds.truncate(cfg.max_corpus.max(1));

    for seed in seeds {
        let mut current = seed;
        loop {
            if search.remaining() == 0 {
                break;
            }
            let mut props = proposals(&current);
            props.truncate(search.remaining());
            if props.is_empty() {
                break;
            }
            let flips = search.evaluate(&props);
            // The proposal list mixes shrink moves with drop/bisect moves;
            // stamp progress under the phase of the move that *won* (drop
            // and bisect shrink the window set, the rest mutate it).
            let mut adopted: Option<(u64, usize)> = None;
            for (i, (candidate, flipped)) in props.iter().zip(&flips).enumerate() {
                if !*flipped {
                    continue;
                }
                let c = cost(candidate);
                // Require strict improvement except for pure magnitude
                // dampening, which keeps cost but weakens the fault.
                let improves =
                    c < cost(&current) || (c == cost(&current) && candidate.len() == current.len());
                if improves && adopted.is_none_or(|(best, _)| c < best) {
                    adopted = Some((c, i));
                }
            }
            match adopted {
                Some((_, i)) => {
                    let phase = if props[i].len() < current.len() {
                        SearchPhase::Bisect
                    } else {
                        SearchPhase::Mutate
                    };
                    // Equal-cost adoption only moves once (magnitude is
                    // halved at most log2 times above the floor), so the
                    // loop terminates.
                    if cost(&props[i]) == cost(&current) && props[i] == current {
                        break;
                    }
                    current = props[i].clone();
                    search.progress(progress, phase);
                }
                None => {
                    search.progress(progress, SearchPhase::Mutate);
                    break;
                }
            }
        }
    }

    // Rank + dedup + truncate into the corpus.
    let mut entries: Vec<Counterexample> = search
        .found
        .iter()
        .map(|(_, f)| Counterexample {
            cost: cost(&f.windows),
            faulted_ticks: f.windows.iter().map(|w| w.hold_ticks).sum(),
            windows: f.windows.clone(),
            tick_faults: to_schedules(&f.windows),
            outcome: OutcomeSummary {
                predicate_holds: cfg.predicate.holds(&f.report),
                completed: f.report.completed,
                exec_time_s: f.report.exec_time_s,
                max_temp_c: f.report.max_temp_c(),
                failsafe_engagements: f.report.nodes.iter().map(|n| n.failsafe_engagements).sum(),
                any_shutdown: f.report.any_shutdown(),
            },
            report_digest: report_digest(&f.report),
        })
        .collect();
    entries.sort_by(|a, b| {
        a.cost.cmp(&b.cost).then_with(|| candidate_key(&a.windows).cmp(&candidate_key(&b.windows)))
    });
    entries.dedup_by(|a, b| candidate_key(&a.windows) == candidate_key(&b.windows));
    entries.truncate(cfg.max_corpus.max(1));

    Ok(ChaosCorpus {
        schema: CHAOS_SCHEMA.to_string(),
        scenario: base.name.clone(),
        seed: cfg.seed,
        predicate: cfg.predicate.clone(),
        baseline_holds,
        baseline_digest,
        evaluations: search.evaluations,
        counterexamples: entries,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use unitherm_obs::NullSink;

    fn report_with(failsafe: u64, completed: bool, exec: f64, max_t: f64) -> RunReport {
        let mut r = RunReport {
            name: "t".into(),
            fan_label: String::new(),
            dvfs_label: String::new(),
            workload_label: String::new(),
            nodes: vec![],
            wall_time_s: exec,
            completed,
            exec_time_s: exec,
            rack_air: None,
            journal_warning: None,
        };
        let scenario = Scenario::new("t").with_max_time(1.0).with_recording(false);
        let node = Simulation::new(scenario).run().nodes.remove(0);
        let mut node = node;
        node.failsafe_engagements = failsafe;
        node.temp_summary.max = max_t;
        r.nodes.push(node);
        r
    }

    #[test]
    fn predicates_evaluate_from_reports() {
        let quiet = report_with(0, true, 50.0, 48.0);
        let tripped = report_with(2, false, 120.0, 70.0);
        assert!(!OutcomePredicate::FailsafeTrip.holds(&quiet));
        assert!(OutcomePredicate::FailsafeTrip.holds(&tripped));
        assert!(OutcomePredicate::ThermalLimit { limit_c: 60.0 }.holds(&tripped));
        assert!(!OutcomePredicate::ThermalLimit { limit_c: 60.0 }.holds(&quiet));
        assert!(OutcomePredicate::CompletionMiss.holds(&tripped));
        assert!(OutcomePredicate::SlaMiss { max_exec_time_s: 40.0 }.holds(&quiet));
        assert!(!OutcomePredicate::SlaMiss { max_exec_time_s: 60.0 }.holds(&quiet));
        let any = OutcomePredicate::AnyOf(vec![
            OutcomePredicate::Shutdown,
            OutcomePredicate::FailsafeTrip,
        ]);
        assert!(any.holds(&tripped));
        assert!(!any.holds(&quiet));
    }

    #[test]
    fn predicate_and_config_round_trip_serde() {
        let cfg = ChaosConfig {
            predicate: OutcomePredicate::AnyOf(vec![
                OutcomePredicate::ThermalLimit { limit_c: 65.0 },
                OutcomePredicate::SlaMiss { max_exec_time_s: 100.0 },
            ]),
            ..ChaosConfig::default()
        };
        let json = serde_json::to_string(&cfg).expect("serialize");
        let back: ChaosConfig = serde_json::from_str(&json).expect("deserialize");
        assert_eq!(back, cfg);
        let sparse: ChaosConfig = serde_json::from_str("{}").expect("defaults");
        assert_eq!(sparse, ChaosConfig::default());
    }

    #[test]
    fn normalize_unions_overlapping_same_kind_windows() {
        let w = |start, hold| FaultWindow {
            node: 0,
            start_tick: start,
            hold_ticks: hold,
            kind: AttackKind::SensorDropout,
            magnitude: 0.0,
        };
        let merged = normalize(vec![w(100, 50), w(120, 100)]);
        assert_eq!(merged.len(), 1);
        assert_eq!(merged[0].start_tick, 100);
        assert_eq!(merged[0].hold_ticks, 120, "union covers 100..220");
        // Disjoint windows and different kinds stay separate.
        let kept = normalize(vec![w(100, 10), w(200, 10)]);
        assert_eq!(kept.len(), 2);
    }

    #[test]
    fn cost_counts_ticks_plus_windows() {
        let w = |start, hold| FaultWindow {
            node: 0,
            start_tick: start,
            hold_ticks: hold,
            kind: AttackKind::PwmStuck,
            magnitude: 0.0,
        };
        assert_eq!(cost(&[w(1, 100), w(300, 50)]), 152);
    }

    #[test]
    fn schedules_install_paired_windows() {
        let windows = vec![
            FaultWindow {
                node: 1,
                start_tick: 100,
                hold_ticks: 40,
                kind: AttackKind::SensorJitter,
                magnitude: 2.5,
            },
            FaultWindow {
                node: 0,
                start_tick: 10,
                hold_ticks: 20,
                kind: AttackKind::SensorDropout,
                magnitude: 0.0,
            },
        ];
        let scheds = to_schedules(&windows);
        assert_eq!(scheds.len(), 2);
        assert_eq!(scheds[0].0, 0);
        assert_eq!(
            scheds[0].1.events(),
            &[(10, FaultEvent::SensorDropout), (30, FaultEvent::SensorRestore)]
        );
        assert_eq!(
            scheds[1].1.events(),
            &[(100, FaultEvent::SensorJitter(2.5)), (140, FaultEvent::SensorJitter(0.0))]
        );
    }

    #[test]
    fn proposals_only_shrink() {
        let current = vec![
            FaultWindow {
                node: 0,
                start_tick: 100,
                hold_ticks: 200,
                kind: AttackKind::SensorDropout,
                magnitude: 0.0,
            },
            FaultWindow {
                node: 1,
                start_tick: 50,
                hold_ticks: 80,
                kind: AttackKind::SensorJitter,
                magnitude: 4.0,
            },
        ];
        let base = cost(&current);
        let props = proposals(&current);
        assert!(!props.is_empty());
        for p in &props {
            assert!(cost(p) <= base, "proposal got more expensive: {p:?}");
            assert!(!p.is_empty());
        }
        // Window drops are offered for multi-window candidates.
        assert!(props.iter().any(|p| p.len() == 1));
        // Jitter magnitude dampening is offered.
        assert!(props
            .iter()
            .any(|p| p.iter().any(|w| w.kind == AttackKind::SensorJitter && w.magnitude == 2.0)));
    }

    #[test]
    fn invalid_config_and_scenario_are_named_errors() {
        let base = Scenario::new("cfg").with_max_time(1.0);
        let bad_budget = ChaosConfig { max_evaluations: 1, ..ChaosConfig::default() };
        assert!(matches!(
            chaos_search(&base, &bad_budget, &mut NullSink),
            Err(ChaosError::InvalidConfig(_))
        ));
        let bad_hold =
            ChaosConfig { hold_min_ticks: 10, hold_max_ticks: 5, ..ChaosConfig::default() };
        assert!(matches!(
            chaos_search(&base, &bad_hold, &mut NullSink),
            Err(ChaosError::InvalidConfig(_))
        ));
        let mut invalid = base;
        invalid.nodes = 0;
        assert!(matches!(
            chaos_search(&invalid, &ChaosConfig::default(), &mut NullSink),
            Err(ChaosError::InvalidScenario(_))
        ));
    }
}
