#![warn(missing_docs)]

//! Discrete-time cluster simulation.
//!
//! Reproduces the paper's experimental setup: a power-aware cluster (4 nodes
//! in the paper) running an MPI workload with one rank per node, each node
//! under a configurable combination of fan control and DVFS control:
//!
//! * physics advances at a fixed 50 ms tick;
//! * the thermal sensor is polled at the paper's 4 Hz through the
//!   lm-sensors driver, feeding whichever controllers are attached;
//! * fan decisions travel through the i2c fan driver, DVFS decisions
//!   through the cpufreq driver — the same seams the real system used;
//! * ranks are BSP-coupled: every rank must reach a barrier before any
//!   proceeds, so one throttled CPU stretches the whole job;
//! * the wall-power meter integrates each node's draw at 1 Hz.
//!
//! Modules:
//!
//! * [`scheme`] — the control-scheme vocabulary, re-exported from
//!   `unitherm_core::control_plane` (the shared `SchemeSpec::build()`
//!   factory is the only place a scheme becomes a daemon pipeline);
//! * [`scenario`] — a complete experiment description (workload, nodes,
//!   schemes, faults, duration, seed);
//! * [`node_sim`] — one node's simulation state: hardware + platform
//!   binding + control plane + recorders;
//! * [`sim`] — the cluster tick loop with barrier release; with
//!   `Scenario::threads > 1` the per-node passes run shard-parallel on a
//!   persistent worker pool with bit-identical results;
//! * [`report`] — structured run results (traces + the summary numbers the
//!   paper's tables report);
//! * [`replay`] — journal-driven fault injection: derive a tick-addressed
//!   fault schedule from a recorded event journal so the faults land
//!   exactly where an earlier run made interesting decisions;
//! * [`sweep`] — parallel execution of independent scenarios (std
//!   scoped threads, one per configuration), budgeted against the
//!   intra-run thread counts so the two layers never oversubscribe;
//! * [`chaos`] — adversarial search over tick-addressed fault windows:
//!   finds the cheapest fault sequence that flips a scenario outcome
//!   (failsafe trip, thermal limit, SLA miss) and emits a replayable
//!   counterexample corpus.

pub mod chaos;
pub mod node_sim;
pub(crate) mod pool;
pub mod rack;
pub mod replay;
pub mod report;
pub mod scenario;
pub mod scheme;
pub mod sim;
pub mod sweep;

pub use chaos::{
    chaos_search, report_digest, AttackKind, ChaosConfig, ChaosCorpus, ChaosError, Counterexample,
    FaultWindow, OutcomePredicate, OutcomeSummary, CHAOS_SCHEMA,
};
pub use rack::{RackConfig, RackModel};
pub use replay::{
    derive_fault_plan, derive_fault_plan_from_cursor, DerivedFault, ReplayError, ReplayOptions,
    ReplayPlan,
};
pub use report::{NodeReport, RunReport};
pub use scenario::{Scenario, ScenarioError, WorkloadSpec};
pub use scheme::{DvfsScheme, FanScheme, SchemeSpec};
pub use sim::Simulation;
pub use sweep::{
    run_scenarios_parallel, thread_budget, try_run_scenarios_parallel, PermitGuard, SweepError,
    ThreadPermits,
};
