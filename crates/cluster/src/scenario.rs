//! Experiment descriptions.
//!
//! A [`Scenario`] is everything needed to run one experiment arm
//! deterministically: node count, workload, control schemes, fault plans,
//! duration bounds and the seed. Experiments construct scenarios; the
//! [`crate::sim::Simulation`] executes them.

use unitherm_simnode::faults::{FaultPlan, TickFaultSchedule};
use unitherm_simnode::NodeConfig;
use unitherm_workload::burn::BurnConfig;
use unitherm_workload::{
    CpuBurn, NpbBenchmark, NpbClass, PhaseWorkload, ScriptWorkload, Segment, Workload,
};

use unitherm_core::config::ConfigError;

use crate::scheme::{DvfsScheme, FanScheme, SchemeSpec};

/// A scenario that cannot be run as described.
#[derive(Clone, PartialEq, Eq)]
pub struct ScenarioError {
    message: String,
}

impl ScenarioError {
    fn new(message: impl Into<String>) -> Self {
        Self { message: message.into() }
    }

    /// The human-readable description of what is wrong.
    pub fn message(&self) -> &str {
        &self.message
    }
}

impl std::fmt::Debug for ScenarioError {
    // Unwrapping a validation error should print the message itself, not a
    // struct dump.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "ScenarioError: {}", self.message)
    }
}

impl std::fmt::Display for ScenarioError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.message)
    }
}

impl std::error::Error for ScenarioError {}

impl From<ConfigError> for ScenarioError {
    fn from(e: ConfigError) -> Self {
        Self::new(e.message())
    }
}

/// Which workload every rank runs.
#[derive(Debug, Clone, Default, PartialEq, serde::Serialize, serde::Deserialize)]
pub enum WorkloadSpec {
    /// The cpu-burn stressor (unbounded; runs until `max_time_s`).
    #[default]
    CpuBurn,
    /// cpu-burn with explicit burst tuning.
    CpuBurnTuned(BurnConfig),
    /// A NAS-style benchmark.
    Npb {
        /// Which benchmark.
        bench: NpbBenchmark,
        /// Problem class.
        class: NpbClass,
    },
    /// A scripted utilization trace (same script on every rank).
    Script(Vec<Segment>),
    /// A recorded utilization trace replayed on every rank: rows of
    /// `(time_s, utilization, activity)`. Build from CSV with
    /// [`unitherm_workload::TraceWorkload::from_csv_file`] and embed the
    /// points, or write them directly in a scenario JSON.
    Trace {
        /// Trace rows, strictly increasing in time.
        points: Vec<(f64, f64, f64)>,
        /// Replay in a loop instead of finishing at the last timestamp.
        looped: bool,
    },
    /// Idle (baseline measurements).
    Idle,
}

impl WorkloadSpec {
    /// Instantiates the workload for one rank.
    pub fn instantiate(&self, rank: usize, seed: u64) -> Box<dyn Workload> {
        match self {
            WorkloadSpec::CpuBurn => {
                Box::new(CpuBurn::new(seed ^ (rank as u64).wrapping_mul(0x2545_F491_4F6C_DD1D)))
            }
            WorkloadSpec::CpuBurnTuned(cfg) => Box::new(CpuBurn::with_config(
                *cfg,
                seed ^ (rank as u64).wrapping_mul(0x2545_F491_4F6C_DD1D),
            )),
            WorkloadSpec::Npb { bench, class } => Box::new(bench.rank_program(*class, rank, seed)),
            WorkloadSpec::Script(segments) => Box::new(ScriptWorkload::new(segments.clone())),
            WorkloadSpec::Trace { points, looped } => {
                let trace = unitherm_workload::TraceWorkload::from_points_with_activity(points);
                Box::new(if *looped { trace.looped() } else { trace })
            }
            WorkloadSpec::Idle => {
                Box::new(PhaseWorkload::new(vec![unitherm_workload::Phase::comm(
                    f64::MAX / 4.0,
                    0.02,
                )]))
            }
        }
    }

    /// Short label for reports.
    pub fn label(&self) -> String {
        match self {
            WorkloadSpec::CpuBurn | WorkloadSpec::CpuBurnTuned(_) => "cpu-burn".to_string(),
            WorkloadSpec::Npb { bench, class } => bench.name(*class),
            WorkloadSpec::Script(_) => "script".to_string(),
            WorkloadSpec::Trace { .. } => "trace".to_string(),
            WorkloadSpec::Idle => "idle".to_string(),
        }
    }

    /// True when the workload completes on its own (vs. running until the
    /// time limit).
    pub fn is_finite(&self) -> bool {
        matches!(
            self,
            WorkloadSpec::Npb { .. }
                | WorkloadSpec::Script(_)
                | WorkloadSpec::Trace { looped: false, .. }
        )
    }
}

// Serde defaults: scenario JSON files only need to name what they change.
fn default_nodes() -> usize {
    4
}
fn default_seed() -> u64 {
    0xC0FFEE
}
fn default_max_time() -> f64 {
    300.0
}
fn default_dt() -> f64 {
    0.05
}
fn default_sample_period() -> f64 {
    0.25
}
fn default_fan() -> FanScheme {
    FanScheme::ChipAutomatic { max_duty: 100 }
}
fn default_true() -> bool {
    true
}
fn default_event_capacity() -> usize {
    256
}
fn default_threads() -> usize {
    1
}

/// A complete experiment description.
///
/// Serializable: scenario JSON files (see `examples/scenarios/`) only need
/// to carry the fields they change — everything else defaults to the
/// paper's 4-node setup.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct Scenario {
    /// Human-readable name (appears in reports).
    pub name: String,
    /// Number of nodes (the paper uses 4).
    #[serde(default = "default_nodes")]
    pub nodes: usize,
    /// Master seed; per-node seeds derive from it.
    #[serde(default = "default_seed")]
    pub seed: u64,
    /// Hard wall-clock limit in simulated seconds.
    #[serde(default = "default_max_time")]
    pub max_time_s: f64,
    /// Physics tick in seconds.
    #[serde(default = "default_dt")]
    pub dt_s: f64,
    /// Sensor sampling period in seconds (the paper: 250 ms).
    #[serde(default = "default_sample_period")]
    pub sample_period_s: f64,
    /// Fan-side control scheme (same on every node).
    #[serde(default = "default_fan")]
    pub fan: FanScheme,
    /// DVFS-side control scheme (same on every node).
    #[serde(default)]
    pub dvfs: DvfsScheme,
    /// Full control-plane scheme (same on every node). When set, this takes
    /// precedence over the split `fan`/`dvfs` pair — it is how coordinated
    /// arms like `Hybrid` (§4.4) and `AcpiSleep` (§3.2.2) are selected.
    #[serde(default)]
    pub scheme: Option<SchemeSpec>,
    /// Workload specification.
    #[serde(default)]
    pub workload: WorkloadSpec,
    /// Fault plans keyed by node index.
    #[serde(default)]
    pub faults: Vec<(usize, FaultPlan)>,
    /// Tick-addressed fault schedules keyed by node index (deterministic
    /// replay: faults pinned to the exact ticks where a recorded run made
    /// interesting decisions). Composes with `faults`; within a tick the
    /// tick-addressed events deliver first. See `crate::replay`.
    #[serde(default)]
    pub tick_faults: Vec<(usize, TickFaultSchedule)>,
    /// Node hardware configuration.
    #[serde(default)]
    pub node_config: NodeConfig,
    /// Record full time series (disable for benchmark throughput runs).
    #[serde(default = "default_true")]
    pub record_series: bool,
    /// Extra simulated seconds after every rank finishes (still bounded by
    /// `max_time_s`). Lets experiments observe post-job cooldown behaviour,
    /// e.g. tDVFS restoring the original frequency (Figure 8).
    #[serde(default)]
    pub cooldown_s: f64,
    /// Optional failsafe watchdog on every node (forces maximum cooling on
    /// sensor blackouts or panic temperatures).
    #[serde(default)]
    pub failsafe: Option<unitherm_core::failsafe::FailsafeConfig>,
    /// Optional rack-level ambient coupling: node exhaust heat recirculates
    /// into a shared intake-air volume.
    #[serde(default)]
    pub rack: Option<crate::rack::RackConfig>,
    /// Per-node fan-scheme overrides (heterogeneous clusters: a dusty or
    /// undersized fan on one node). Nodes not listed use `fan`.
    #[serde(default)]
    pub fan_overrides: Vec<(usize, FanScheme)>,
    /// Per-node hardware-config overrides (a hotter node position, a
    /// different heatsink). Nodes not listed use `node_config`.
    #[serde(default)]
    pub node_config_overrides: Vec<(usize, NodeConfig)>,
    /// Capacity of each node's observability event ring (most recent
    /// control-plane events kept for the report). 0 disables event
    /// retention — counters are still maintained — which is the sink-off
    /// arm of the bench overhead comparison.
    #[serde(default = "default_event_capacity")]
    pub event_capacity: usize,
    /// Worker threads for the intra-run tick loop (capped at the node
    /// count). 1 — the default — runs the serial tick path unchanged;
    /// larger values shard the nodes across a persistent worker pool with
    /// bit-identical results (see `crate::pool`). Coordinate with
    /// [`crate::sweep::run_scenarios_parallel`]'s thread budget when
    /// sweeping many scenarios at once.
    #[serde(default = "default_threads")]
    pub threads: usize,
    /// Force every node onto the scalar per-struct tick path, bypassing the
    /// structure-of-arrays [`unitherm_simnode::PhysicsBatch`] fast lanes.
    /// The two paths are bit-identical (pinned by the equivalence tests);
    /// this switch exists so tests and benchmarks can compare them.
    #[serde(default)]
    pub force_scalar: bool,
}

impl Scenario {
    /// A 4-node scenario with the paper's defaults: traditional fan control,
    /// no DVFS, cpu-burn, 300 s.
    pub fn new(name: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            nodes: 4,
            seed: 0xC0FFEE,
            max_time_s: 300.0,
            dt_s: 0.05,
            sample_period_s: 0.25,
            fan: FanScheme::ChipAutomatic { max_duty: 100 },
            dvfs: DvfsScheme::None,
            scheme: None,
            workload: WorkloadSpec::CpuBurn,
            faults: Vec::new(),
            tick_faults: Vec::new(),
            node_config: NodeConfig::default(),
            record_series: true,
            cooldown_s: 0.0,
            failsafe: None,
            rack: None,
            fan_overrides: Vec::new(),
            node_config_overrides: Vec::new(),
            event_capacity: default_event_capacity(),
            threads: 1,
            force_scalar: false,
        }
    }

    /// Builder: node count.
    pub fn with_nodes(mut self, nodes: usize) -> Self {
        self.nodes = nodes;
        self
    }

    /// Builder: seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Builder: time limit.
    pub fn with_max_time(mut self, seconds: f64) -> Self {
        self.max_time_s = seconds;
        self
    }

    /// Builder: fan scheme.
    pub fn with_fan(mut self, fan: FanScheme) -> Self {
        self.fan = fan;
        self
    }

    /// Builder: DVFS scheme.
    pub fn with_dvfs(mut self, dvfs: DvfsScheme) -> Self {
        self.dvfs = dvfs;
        self
    }

    /// Builder: full control-plane scheme (overrides the `fan`/`dvfs`
    /// split; selects coordinated arms like hybrid or ACPI sleep).
    pub fn with_scheme(mut self, scheme: SchemeSpec) -> Self {
        self.scheme = Some(scheme);
        self
    }

    /// Builder: workload.
    pub fn with_workload(mut self, workload: WorkloadSpec) -> Self {
        self.workload = workload;
        self
    }

    /// Builder: attach a fault plan to a node.
    pub fn with_fault(mut self, node: usize, plan: FaultPlan) -> Self {
        self.faults.push((node, plan));
        self
    }

    /// Builder: attach a tick-addressed fault schedule to a node
    /// (deterministic replay; composes with [`Scenario::with_fault`]).
    pub fn with_tick_faults(mut self, node: usize, schedule: TickFaultSchedule) -> Self {
        self.tick_faults.push((node, schedule));
        self
    }

    /// Builder: series recording switch.
    pub fn with_recording(mut self, record: bool) -> Self {
        self.record_series = record;
        self
    }

    /// Builder: post-completion cooldown observation window.
    pub fn with_cooldown(mut self, seconds: f64) -> Self {
        self.cooldown_s = seconds;
        self
    }

    /// Builder: attach the failsafe watchdog to every node.
    pub fn with_failsafe(mut self, cfg: unitherm_core::failsafe::FailsafeConfig) -> Self {
        self.failsafe = Some(cfg);
        self
    }

    /// Builder: couple the nodes through a shared rack air volume.
    pub fn with_rack(mut self, cfg: crate::rack::RackConfig) -> Self {
        self.rack = Some(cfg);
        self
    }

    /// Builder: override the fan scheme on one node (heterogeneous
    /// clusters).
    pub fn with_node_fan(mut self, node: usize, fan: FanScheme) -> Self {
        self.fan_overrides.push((node, fan));
        self
    }

    /// Builder: override the hardware configuration on one node.
    pub fn with_node_config(mut self, node: usize, cfg: NodeConfig) -> Self {
        self.node_config_overrides.push((node, cfg));
        self
    }

    /// Builder: per-node event-ring capacity (0 disables event retention).
    pub fn with_event_capacity(mut self, capacity: usize) -> Self {
        self.event_capacity = capacity;
        self
    }

    /// Builder: intra-run worker threads (1 = serial tick loop; more shard
    /// the nodes across a persistent pool, bit-identically).
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Builder: force the scalar per-struct tick path (disables the
    /// structure-of-arrays physics lanes; for equivalence tests and
    /// benchmarks).
    pub fn with_force_scalar(mut self, force: bool) -> Self {
        self.force_scalar = force;
        self
    }

    /// The effective fan scheme for a node (override or cluster default).
    pub fn fan_for(&self, node: usize) -> &FanScheme {
        self.fan_overrides.iter().find(|(n, _)| *n == node).map(|(_, f)| f).unwrap_or(&self.fan)
    }

    /// The effective hardware config for a node.
    pub fn node_config_for(&self, node: usize) -> &NodeConfig {
        self.node_config_overrides
            .iter()
            .find(|(n, _)| *n == node)
            .map(|(_, c)| c)
            .unwrap_or(&self.node_config)
    }

    /// The effective control scheme for a node: the full `scheme` when
    /// set, else the split `fan`/`dvfs` pair (honouring per-node fan
    /// overrides). This is what [`crate::node_sim::NodeSim::build`] hands
    /// to `SchemeSpec::build()`.
    pub fn effective_scheme(&self, node: usize) -> SchemeSpec {
        self.scheme.clone().unwrap_or_else(|| SchemeSpec::Split {
            fan: self.fan_for(node).clone(),
            dvfs: self.dvfs.clone(),
        })
    }

    /// Fan-side label for reports (cluster default, ignoring overrides).
    pub fn fan_label(&self) -> String {
        match &self.scheme {
            Some(spec) => spec.fan_label(),
            None => self.fan.label(),
        }
    }

    /// DVFS-side label for reports.
    pub fn dvfs_label(&self) -> String {
        match &self.scheme {
            Some(spec) => spec.dvfs_label(),
            None => self.dvfs.label(),
        }
    }

    /// Validates the scenario, returning a description of the first
    /// problem found: zero nodes, non-positive times, a sampling period not
    /// a whole number of ticks, references to out-of-range nodes, or a
    /// control scheme whose controller tuning is unusable.
    ///
    /// # Panics
    /// Hardware configs ([`NodeConfig`]) still assert internally.
    pub fn validate(&self) -> Result<(), ScenarioError> {
        fn check(ok: bool, message: impl Into<String>) -> Result<(), ScenarioError> {
            if ok {
                Ok(())
            } else {
                Err(ScenarioError::new(message))
            }
        }
        check(self.nodes >= 1, "need at least one node")?;
        check(self.threads >= 1, "need at least one worker thread")?;
        check(self.max_time_s > 0.0, "time limit must be positive")?;
        check(self.dt_s > 0.0, "tick must be positive")?;
        check(self.sample_period_s >= self.dt_s, "sampling cannot outpace the tick")?;
        let ratio = self.sample_period_s / self.dt_s;
        check(
            (ratio - ratio.round()).abs() < 1e-9,
            "sample period must be a whole number of ticks",
        )?;
        for (node, _) in &self.faults {
            check(*node < self.nodes, format!("fault plan for nonexistent node {node}"))?;
        }
        for (node, _) in &self.tick_faults {
            check(*node < self.nodes, format!("tick-fault schedule for nonexistent node {node}"))?;
        }
        for (node, _) in &self.fan_overrides {
            check(*node < self.nodes, format!("fan override for nonexistent node {node}"))?;
        }
        for (node, cfg) in &self.node_config_overrides {
            check(*node < self.nodes, format!("config override for nonexistent node {node}"))?;
            cfg.validate();
        }
        self.node_config.validate();
        // Deserialized configs bypass constructor checks, so every config
        // that can arrive in a scenario file validates here as a data error.
        if let Some(fs) = &self.failsafe {
            fs.validate()?;
        }
        for node in 0..self.nodes {
            self.effective_scheme(node).validate()?;
        }
        Ok(())
    }

    /// Expected number of recorder samples for a full-length run, used to
    /// pre-reserve time series so steady-state recording never reallocates.
    /// Capped so absurd `max_time_s` values don't pre-commit memory.
    pub fn expected_samples(&self) -> usize {
        if !self.record_series || self.sample_period_s <= 0.0 {
            return 0;
        }
        let n = (self.max_time_s / self.sample_period_s).ceil() + 1.0;
        if n.is_finite() {
            (n as usize).min(65_536)
        } else {
            65_536
        }
    }

    /// Per-node deterministic seed.
    pub fn node_seed(&self, node: usize) -> u64 {
        self.seed ^ (node as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use unitherm_workload::phases::WorkState;

    #[test]
    fn default_scenario_is_valid_and_paper_shaped() {
        let s = Scenario::new("test");
        s.validate().unwrap();
        assert_eq!(s.nodes, 4);
        assert_eq!(s.sample_period_s, 0.25);
    }

    #[test]
    fn builders_compose() {
        let s = Scenario::new("x")
            .with_nodes(2)
            .with_seed(9)
            .with_max_time(10.0)
            .with_fan(FanScheme::Constant { duty: 75 })
            .with_dvfs(DvfsScheme::cpuspeed())
            .with_workload(WorkloadSpec::Idle)
            .with_recording(false);
        s.validate().unwrap();
        assert_eq!(s.nodes, 2);
        assert_eq!(s.seed, 9);
        assert!(!s.record_series);
    }

    #[test]
    fn node_seeds_differ() {
        let s = Scenario::new("x");
        let seeds: Vec<u64> = (0..4).map(|n| s.node_seed(n)).collect();
        for i in 0..4 {
            for j in 0..i {
                assert_ne!(seeds[i], seeds[j]);
            }
        }
    }

    #[test]
    fn workload_spec_instantiates_each_kind() {
        let specs = [
            WorkloadSpec::CpuBurn,
            WorkloadSpec::Npb { bench: NpbBenchmark::Bt, class: NpbClass::A },
            WorkloadSpec::Script(vec![Segment::new(1.0, 0.5)]),
            WorkloadSpec::Idle,
        ];
        for spec in &specs {
            let mut w = spec.instantiate(0, 1);
            let out = w.advance(0.25, 1.0);
            assert!((0.0..=1.0).contains(&out.utilization), "{spec:?}");
        }
    }

    #[test]
    fn idle_spec_runs_forever_quietly() {
        let mut w = WorkloadSpec::Idle.instantiate(0, 1);
        for _ in 0..1000 {
            let u = w.advance(0.25, 1.0).utilization;
            assert!(u < 0.1);
        }
        assert_eq!(w.state(), WorkState::Running);
    }

    #[test]
    fn finiteness_classification() {
        assert!(!WorkloadSpec::CpuBurn.is_finite());
        assert!(!WorkloadSpec::Idle.is_finite());
        assert!(WorkloadSpec::Npb { bench: NpbBenchmark::Lu, class: NpbClass::B }.is_finite());
        assert!(WorkloadSpec::Script(vec![Segment::new(1.0, 0.5)]).is_finite());
        let points = vec![(0.0, 0.5, 0.5), (1.0, 0.8, 0.8)];
        assert!(WorkloadSpec::Trace { points: points.clone(), looped: false }.is_finite());
        assert!(!WorkloadSpec::Trace { points, looped: true }.is_finite());
    }

    #[test]
    fn trace_spec_replays_in_a_simulation() {
        use crate::sim::Simulation;
        let report = Simulation::new(
            Scenario::new("trace")
                .with_nodes(1)
                .with_workload(WorkloadSpec::Trace {
                    points: vec![(0.0, 0.1, 0.1), (10.0, 0.9, 0.9), (20.0, 0.1, 0.1)],
                    looped: false,
                })
                .with_max_time(60.0),
        )
        .run();
        assert!(report.completed, "finite trace finishes");
        assert!((report.exec_time_s - 20.0).abs() < 1.0, "exec {}", report.exec_time_s);
        // The utilization trace actually reached the node.
        let u = &report.nodes[0].util;
        assert!(u.value_at(15.0).unwrap() > 0.8);
        assert!(u.value_at(5.0).unwrap() < 0.2);
    }

    #[test]
    fn ranks_get_distinct_burn_streams() {
        let mut a = WorkloadSpec::CpuBurn.instantiate(0, 1);
        let mut b = WorkloadSpec::CpuBurn.instantiate(1, 1);
        let same = (0..500)
            .filter(|_| {
                (a.advance(0.25, 1.0).utilization - b.advance(0.25, 1.0).utilization).abs() < 1e-12
            })
            .count();
        assert!(same < 500);
    }

    #[test]
    #[should_panic(expected = "nonexistent node")]
    fn fault_for_missing_node_rejected() {
        Scenario::new("x").with_nodes(2).with_fault(5, FaultPlan::none()).validate().unwrap();
    }

    #[test]
    #[should_panic(expected = "nonexistent node")]
    fn tick_faults_for_missing_node_rejected() {
        Scenario::new("x")
            .with_nodes(2)
            .with_tick_faults(3, TickFaultSchedule::none())
            .validate()
            .unwrap();
    }

    #[test]
    #[should_panic(expected = "whole number of ticks")]
    fn misaligned_sampling_rejected() {
        let mut s = Scenario::new("x");
        s.sample_period_s = 0.13;
        s.validate().unwrap();
    }
}
