//! Parallel execution of independent scenarios.
//!
//! Parameter sweeps (Figures 5, 7, 10; Table 1; the ablations) run many
//! independent simulations. Each simulation is single-threaded and
//! deterministic; the sweep fans them out across std scoped threads pulling
//! from a shared work queue — the shared-nothing data-parallel idiom — and
//! reassembles results in input order.

use std::sync::mpsc;
use std::sync::Mutex;

use crate::report::RunReport;
use crate::scenario::Scenario;
use crate::sim::Simulation;

/// Runs every scenario, using up to `max_threads` worker threads, and
/// returns reports in the same order as the input.
///
/// # Panics
/// Propagates panics from worker threads (a panicking simulation is a bug).
pub fn run_scenarios_parallel(scenarios: Vec<Scenario>, max_threads: usize) -> Vec<RunReport> {
    let n = scenarios.len();
    if n == 0 {
        return Vec::new();
    }
    let workers = max_threads.max(1).min(n);
    if workers == 1 {
        return scenarios.into_iter().map(|s| Simulation::new(s).run()).collect();
    }

    let queue: Mutex<std::vec::IntoIter<(usize, Scenario)>> =
        Mutex::new(scenarios.into_iter().enumerate().collect::<Vec<_>>().into_iter());
    let (result_tx, result_rx) = mpsc::channel::<(usize, RunReport)>();

    std::thread::scope(|scope| {
        for _ in 0..workers {
            let queue = &queue;
            let result_tx = result_tx.clone();
            scope.spawn(move || loop {
                let task = queue.lock().expect("queue lock poisoned").next();
                match task {
                    Some((idx, scenario)) => {
                        let report = Simulation::new(scenario).run();
                        result_tx.send((idx, report)).expect("result channel open");
                    }
                    None => break,
                }
            });
        }
        drop(result_tx);
    });

    let mut results: Vec<Option<RunReport>> = (0..n).map(|_| None).collect();
    while let Ok((idx, report)) = result_rx.recv() {
        results[idx] = Some(report);
    }
    results.into_iter().map(|r| r.expect("every scenario produced a report")).collect()
}

/// Runs every scenario with one worker per available CPU (capped at the
/// scenario count).
pub fn run_scenarios(scenarios: Vec<Scenario>) -> Vec<RunReport> {
    let threads = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(4);
    run_scenarios_parallel(scenarios, threads)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::WorkloadSpec;
    use crate::scheme::FanScheme;
    use unitherm_core::control_array::Policy;

    fn quick(name: &str, pp: u32) -> Scenario {
        Scenario::new(name)
            .with_nodes(1)
            .with_workload(WorkloadSpec::CpuBurn)
            .with_fan(FanScheme::dynamic(Policy::new(pp).unwrap(), 100))
            .with_max_time(20.0)
            .with_recording(false)
    }

    #[test]
    fn empty_sweep() {
        assert!(run_scenarios_parallel(vec![], 4).is_empty());
    }

    #[test]
    fn results_preserve_input_order() {
        let scenarios = vec![quick("a", 25), quick("b", 50), quick("c", 75)];
        let reports = run_scenarios_parallel(scenarios, 3);
        assert_eq!(reports.len(), 3);
        assert_eq!(reports[0].name, "a");
        assert_eq!(reports[1].name, "b");
        assert_eq!(reports[2].name, "c");
    }

    #[test]
    fn parallel_matches_serial() {
        let serial = run_scenarios_parallel(vec![quick("x", 50)], 1);
        let parallel = run_scenarios_parallel(vec![quick("x", 50), quick("y", 50)], 2);
        assert_eq!(serial[0].avg_temp_c(), parallel[0].avg_temp_c());
        assert_eq!(serial[0].avg_node_power_w(), parallel[0].avg_node_power_w());
    }

    #[test]
    fn more_scenarios_than_threads() {
        let scenarios: Vec<Scenario> = (0..6).map(|i| quick(&format!("s{i}"), 50)).collect();
        let reports = run_scenarios_parallel(scenarios, 2);
        assert_eq!(reports.len(), 6);
        for (i, r) in reports.iter().enumerate() {
            assert_eq!(r.name, format!("s{i}"));
        }
    }
}
