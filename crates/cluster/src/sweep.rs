//! Parallel execution of independent scenarios.
//!
//! Parameter sweeps (Figures 5, 7, 10; Table 1; the ablations) run many
//! independent simulations. Each simulation is single-threaded and
//! deterministic; the sweep fans them out across std scoped threads claiming
//! work through a lock-free atomic cursor — the shared-nothing data-parallel
//! idiom — and reassembles results in input order.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{mpsc, Condvar, Mutex};

use crate::report::RunReport;
use crate::scenario::{Scenario, ScenarioError};
use crate::sim::Simulation;

/// A sweep job that could not run: its scenario failed validation. Carries
/// the scenario name, so one bad configuration deep inside a generated
/// sweep identifies itself instead of panicking an anonymous worker.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SweepError {
    /// Name of the scenario whose job failed.
    pub scenario: String,
    /// The underlying validation error.
    pub error: ScenarioError,
}

impl std::fmt::Display for SweepError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "sweep job \"{}\" failed: {}", self.scenario, self.error)
    }
}

impl std::error::Error for SweepError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        Some(&self.error)
    }
}

/// The sweep's worker budget: how many scenario-level workers to run so
/// that `workers × threads_per_job` never exceeds `max_threads` (and no
/// worker sits idle when there are fewer jobs than threads).
///
/// `threads_per_job` is the *largest* intra-run thread count among the
/// jobs — a scenario with `Scenario::threads > 1` brings its own worker
/// pool to every simulation, so the sweep must leave room for it.
pub fn thread_budget(max_threads: usize, jobs: usize, threads_per_job: usize) -> usize {
    if jobs == 0 {
        return 0;
    }
    (max_threads.max(1) / threads_per_job.max(1)).clamp(1, jobs)
}

/// A counting semaphore over a fixed thread budget, for callers that run
/// simulations concurrently *over time* rather than as one batch.
///
/// [`thread_budget`] sizes a one-shot sweep up front; a long-lived service
/// (e.g. `unitherm-serve`) instead admits jobs as they arrive, each bringing
/// its own intra-run worker pool (`Scenario::threads`). `ThreadPermits`
/// makes the same no-oversubscription guarantee dynamic: a job acquires as
/// many permits as its pool is wide before running and returns them when the
/// run finishes, so the sum of intra-run pool widths in flight never exceeds
/// the budget.
///
/// Requests larger than the whole budget are clamped to it (an oversized
/// pool still gets to run — alone), mirroring [`thread_budget`]'s
/// "an oversized pool still gets one worker" rule.
///
/// # Example
///
/// ```
/// use unitherm_cluster::sweep::ThreadPermits;
///
/// let permits = ThreadPermits::new(4);
/// let a = permits.acquire(3);
/// assert_eq!(permits.available(), 1);
/// drop(a); // releases the 3 permits
/// let b = permits.acquire(9); // clamped to the budget of 4
/// assert_eq!(permits.available(), 0);
/// drop(b);
/// assert_eq!(permits.available(), 4);
/// ```
pub struct ThreadPermits {
    available: Mutex<usize>,
    returned: Condvar,
    total: usize,
}

impl ThreadPermits {
    /// A budget of `total` thread permits (at least one, so a degenerate
    /// budget still makes progress).
    pub fn new(total: usize) -> Self {
        let total = total.max(1);
        Self { available: Mutex::new(total), returned: Condvar::new(), total }
    }

    /// The full budget.
    pub fn total(&self) -> usize {
        self.total
    }

    /// Permits not currently held.
    pub fn available(&self) -> usize {
        *self.available.lock().expect("permit lock")
    }

    /// Blocks until `n` permits (clamped to the budget) are free, takes
    /// them, and returns a guard that gives them back on drop.
    pub fn acquire(&self, n: usize) -> PermitGuard<'_> {
        let n = n.clamp(1, self.total);
        let mut available = self.available.lock().expect("permit lock");
        while *available < n {
            available = self.returned.wait(available).expect("permit lock");
        }
        *available -= n;
        PermitGuard { permits: self, n }
    }
}

/// Holds `n` permits from a [`ThreadPermits`] budget; dropping the guard
/// returns them and wakes blocked acquirers.
pub struct PermitGuard<'a> {
    permits: &'a ThreadPermits,
    n: usize,
}

impl PermitGuard<'_> {
    /// How many permits this guard holds (the clamped request).
    pub fn held(&self) -> usize {
        self.n
    }
}

impl Drop for PermitGuard<'_> {
    fn drop(&mut self) {
        let mut available = self.permits.available.lock().expect("permit lock");
        *available += self.n;
        self.permits.returned.notify_all();
    }
}

/// Runs every scenario, using up to `max_threads` worker threads, and
/// returns reports in the same order as the input.
///
/// The worker count is budgeted by [`thread_budget`]: capped at the
/// scenario count (small sweeps stop spawning idle threads) and divided by
/// the largest per-scenario intra-run thread count, so sweep parallelism ×
/// intra-run parallelism never oversubscribes the machine.
///
/// Work is dispatched through an atomic claim index instead of a mutex-held
/// queue: a worker that panics mid-simulation cannot poison anything, so the
/// surviving workers drain the remaining scenarios and the original panic
/// payload propagates from the scope join untouched.
///
/// # Panics
/// Propagates panics from worker threads (a panicking simulation is a bug),
/// and panics with the failed job's [`SweepError`] message — scenario name
/// included — when a scenario fails validation. Callers that must survive
/// invalid jobs (the chaos search evaluating generated candidates) use
/// [`try_run_scenarios_parallel`] instead.
pub fn run_scenarios_parallel(scenarios: Vec<Scenario>, max_threads: usize) -> Vec<RunReport> {
    try_run_scenarios_parallel(scenarios, max_threads)
        .into_iter()
        .map(|r| r.unwrap_or_else(|e| panic!("{e}")))
        .collect()
}

/// Fallible form of [`run_scenarios_parallel`]: every scenario produces
/// either its report or a [`SweepError`] naming it, in input order.
///
/// A scenario that fails validation becomes a job failure — the worker
/// moves on to the next claim — so one corrupt configuration (or one
/// pathological search candidate) cannot take down a whole sweep.
///
/// # Panics
/// Still propagates *panics* from worker threads: a simulation that
/// validated and then panicked mid-run is a bug, not a job failure.
pub fn try_run_scenarios_parallel(
    scenarios: Vec<Scenario>,
    max_threads: usize,
) -> Vec<Result<RunReport, SweepError>> {
    let run_one = |scenario: Scenario| -> Result<RunReport, SweepError> {
        let name = scenario.name.clone();
        match Simulation::try_new(scenario) {
            Ok(sim) => Ok(sim.run()),
            Err(error) => Err(SweepError { scenario: name, error }),
        }
    };

    let n = scenarios.len();
    if n == 0 {
        return Vec::new();
    }
    let per_job = scenarios.iter().map(|s| s.threads.min(s.nodes).max(1)).max().unwrap_or(1);
    let workers = thread_budget(max_threads, n, per_job);
    if workers == 1 {
        return scenarios.into_iter().map(run_one).collect();
    }

    let next = AtomicUsize::new(0);
    let (result_tx, result_rx) = mpsc::channel::<(usize, Result<RunReport, SweepError>)>();

    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                let next = &next;
                let scenarios = &scenarios;
                let result_tx = result_tx.clone();
                let run_one = &run_one;
                scope.spawn(move || loop {
                    let idx = next.fetch_add(1, Ordering::Relaxed);
                    let Some(scenario) = scenarios.get(idx) else { break };
                    let result = run_one(scenario.clone());
                    // Ignore a closed channel: it only closes early when a
                    // sibling panicked — dying here would mask the original
                    // message.
                    let _ = result_tx.send((idx, result));
                })
            })
            .collect();
        drop(result_tx);
        // Join manually and re-raise the first worker's own panic payload;
        // letting the scope auto-join would replace it with the generic
        // "a scoped thread panicked".
        for handle in handles {
            if let Err(payload) = handle.join() {
                std::panic::resume_unwind(payload);
            }
        }
    });

    let mut results: Vec<Option<Result<RunReport, SweepError>>> = (0..n).map(|_| None).collect();
    while let Ok((idx, result)) = result_rx.recv() {
        results[idx] = Some(result);
    }
    results.into_iter().map(|r| r.expect("every scenario produced a result")).collect()
}

/// Runs every scenario with one worker per available CPU (capped at the
/// scenario count).
pub fn run_scenarios(scenarios: Vec<Scenario>) -> Vec<RunReport> {
    let threads = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(4);
    run_scenarios_parallel(scenarios, threads)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::WorkloadSpec;
    use crate::scheme::FanScheme;
    use unitherm_core::control_array::Policy;

    fn quick(name: &str, pp: u32) -> Scenario {
        Scenario::new(name)
            .with_nodes(1)
            .with_workload(WorkloadSpec::CpuBurn)
            .with_fan(FanScheme::dynamic(Policy::new(pp).unwrap(), 100))
            .with_max_time(20.0)
            .with_recording(false)
    }

    #[test]
    fn empty_sweep() {
        assert!(run_scenarios_parallel(vec![], 4).is_empty());
    }

    #[test]
    fn budget_caps_at_job_count() {
        assert_eq!(thread_budget(8, 3, 1), 3, "small sweeps spawn no idle workers");
        assert_eq!(thread_budget(8, 100, 1), 8);
        assert_eq!(thread_budget(0, 5, 1), 1, "degenerate budget still makes progress");
        assert_eq!(thread_budget(8, 0, 1), 0);
    }

    #[test]
    fn budget_leaves_room_for_intra_run_pools() {
        assert_eq!(thread_budget(8, 100, 4), 2, "2 sweep workers × 4 intra threads = 8");
        assert_eq!(thread_budget(8, 100, 16), 1, "an oversized pool still gets one worker");
        assert_eq!(thread_budget(16, 3, 4), 3, "job cap still applies");
    }

    #[test]
    fn sweep_of_threaded_scenarios_matches_serial() {
        // Scenarios that bring their own intra-run pools must produce the
        // same reports through the budgeted sweep as one at a time.
        let build = || -> Vec<Scenario> {
            (0..3)
                .map(|i| quick(&format!("t{i}"), 30 + 10 * i).with_nodes(3).with_threads(2))
                .collect()
        };
        let serial = run_scenarios_parallel(build(), 1);
        let parallel = run_scenarios_parallel(build(), 4);
        for (s, p) in serial.iter().zip(&parallel) {
            assert_eq!(s.name, p.name);
            assert_eq!(s.avg_temp_c(), p.avg_temp_c());
            assert_eq!(s.avg_node_power_w(), p.avg_node_power_w());
        }
    }

    #[test]
    fn results_preserve_input_order() {
        let scenarios = vec![quick("a", 25), quick("b", 50), quick("c", 75)];
        let reports = run_scenarios_parallel(scenarios, 3);
        assert_eq!(reports.len(), 3);
        assert_eq!(reports[0].name, "a");
        assert_eq!(reports[1].name, "b");
        assert_eq!(reports[2].name, "c");
    }

    #[test]
    fn parallel_matches_serial() {
        // 16 scenarios across varied policies: parallel dispatch must not
        // change any result relative to the single-threaded path.
        let policies = [10, 20, 25, 30, 40, 50, 55, 60, 65, 70, 75, 80, 85, 90, 95, 100];
        let build = || -> Vec<Scenario> {
            policies.iter().map(|&pp| quick(&format!("p{pp}"), pp)).collect()
        };
        let serial = run_scenarios_parallel(build(), 1);
        let parallel = run_scenarios_parallel(build(), 4);
        assert_eq!(serial.len(), parallel.len());
        for (s, p) in serial.iter().zip(&parallel) {
            assert_eq!(s.name, p.name);
            assert_eq!(s.avg_temp_c(), p.avg_temp_c());
            assert_eq!(s.avg_node_power_w(), p.avg_node_power_w());
            assert_eq!(s.avg_duty_pct(), p.avg_duty_pct());
        }
    }

    #[test]
    fn more_scenarios_than_threads() {
        let scenarios: Vec<Scenario> = (0..6).map(|i| quick(&format!("s{i}"), 50)).collect();
        let reports = run_scenarios_parallel(scenarios, 2);
        assert_eq!(reports.len(), 6);
        for (i, r) in reports.iter().enumerate() {
            assert_eq!(r.name, format!("s{i}"));
        }
    }

    #[test]
    fn worker_panic_propagates_with_original_message() {
        // Regression: an invalid scenario used to panic inside the worker
        // thread (Simulation::new → validate), with nothing identifying
        // *which* job died. The failure now travels back as a SweepError
        // and the infallible entry point panics with the scenario name AND
        // the original validation message.
        let mut bad = quick("bad", 50);
        bad.nodes = 0; // validate() fails: "need at least one node"
        let scenarios = vec![quick("a", 25), bad, quick("b", 75), quick("c", 60)];
        let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            run_scenarios_parallel(scenarios, 2)
        }))
        .expect_err("the bad scenario must panic the sweep");
        let msg = err
            .downcast_ref::<String>()
            .cloned()
            .or_else(|| err.downcast_ref::<&str>().map(|s| (*s).to_string()))
            .unwrap_or_default();
        assert!(msg.contains("need at least one node"), "original message lost: {msg:?}");
        assert!(msg.contains("\"bad\""), "scenario name lost: {msg:?}");
    }

    #[test]
    fn invalid_scenario_is_a_named_job_failure_not_a_worker_panic() {
        // The fallible sweep keeps the surviving jobs: the bad job comes
        // back as Err naming its scenario, every other job still reports.
        let mut bad = quick("bad", 50);
        bad.nodes = 0;
        let scenarios = vec![quick("a", 25), bad, quick("b", 75)];
        let results = try_run_scenarios_parallel(scenarios, 2);
        assert_eq!(results.len(), 3);
        assert_eq!(results[0].as_ref().expect("job a runs").name, "a");
        assert_eq!(results[2].as_ref().expect("job b runs").name, "b");
        let err = results[1].as_ref().expect_err("job 'bad' must fail");
        assert_eq!(err.scenario, "bad");
        assert_eq!(err.error.message(), "need at least one node");
        assert!(err.to_string().contains("\"bad\""), "{err}");
    }

    #[test]
    fn permits_clamp_block_and_release() {
        let permits = ThreadPermits::new(4);
        assert_eq!(permits.total(), 4);
        let a = permits.acquire(2);
        assert_eq!(a.held(), 2);
        assert_eq!(permits.available(), 2);
        // A request larger than the budget clamps instead of deadlocking.
        drop(a);
        let big = permits.acquire(100);
        assert_eq!(big.held(), 4);
        assert_eq!(permits.available(), 0);

        // A blocked acquirer proceeds once the permits come back.
        std::thread::scope(|scope| {
            let waiter = scope.spawn(|| {
                let g = permits.acquire(3);
                g.held()
            });
            // Give the waiter a moment to block, then release.
            std::thread::sleep(std::time::Duration::from_millis(20));
            drop(big);
            assert_eq!(waiter.join().expect("waiter"), 3);
        });
        assert_eq!(permits.available(), 4);
    }

    #[test]
    fn degenerate_permit_budget_still_makes_progress() {
        let permits = ThreadPermits::new(0);
        assert_eq!(permits.total(), 1);
        let g = permits.acquire(0);
        assert_eq!(g.held(), 1, "zero-width requests still hold one permit");
    }

    #[test]
    fn fallible_sweep_matches_serial_for_single_worker() {
        let mut bad = quick("bad", 50);
        bad.nodes = 0;
        // max_threads = 1 exercises the serial fast path.
        let results = try_run_scenarios_parallel(vec![quick("a", 25), bad], 1);
        assert!(results[0].is_ok());
        assert_eq!(results[1].as_ref().expect_err("bad fails serially").scenario, "bad");
    }
}
