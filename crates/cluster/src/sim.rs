//! The cluster tick loop.
//!
//! [`Simulation::run`] drives all nodes in lockstep:
//!
//! ```text
//!   every dt (50 ms):   workload advance → BSP barrier release →
//!                       per-tick daemons (CPUSPEED) → physics tick
//!   every 250 ms:       sensor sample → fan/tDVFS daemons → recorders
//! ```
//!
//! Barrier release is all-or-nothing: a rank that reaches a barrier parks
//! (near-zero utilization) until every unfinished rank arrives. A rank on a
//! throttled or down-scaled CPU therefore delays the whole job — the
//! mechanism behind the paper's execution-time results.

use unitherm_obs::{EventSink, VecSink};
use unitherm_simnode::PhysicsBatch;
use unitherm_workload::WorkState;

use crate::node_sim::NodeSim;
use crate::pool::{shard_range, PassKind, ShardOut, WorkerPool};
use crate::report::{NodeReport, RunReport};
use crate::scenario::{Scenario, ScenarioError};

/// A runnable cluster simulation.
pub struct Simulation {
    /// The intra-run worker pool (`Scenario::threads > 1`). Declared first:
    /// fields drop in declaration order, and the pool's `Drop` joins its
    /// workers — which may still hold shard pointers into `nodes` if a
    /// coordinator-side panic is unwinding — before `nodes` is freed.
    pool: Option<WorkerPool>,
    scenario: Scenario,
    nodes: Vec<NodeSim>,
    rack: Option<crate::rack::RackModel>,
    rack_air: unitherm_metrics::TimeSeries,
    time_s: f64,
    ticks: u64,
    ticks_per_sample: u64,
    /// Ranks whose workload has finished (kept incrementally so the run
    /// loop's completion check is O(1) instead of a per-tick scan).
    finished_nodes: usize,
    /// Optional cluster-wide event journal; every node's event stream is
    /// teed into it on top of the per-node rings (e.g. a JSONL
    /// [`unitherm_obs::JournalWriter`] behind `unitherm-bench --journal`).
    journal: Option<Box<dyn EventSink>>,
    /// Structure-of-arrays lanes over the hot physics state, one batch per
    /// shard (exactly one on the serial path). Nodes whose semantics the
    /// lanes cannot replicate (per-tick daemons, fault sources,
    /// `Scenario::force_scalar`) are flagged passthrough and keep ticking
    /// through their scalar [`unitherm_simnode::Node`]; everyone else ticks
    /// on the lanes and syncs back at every sample (see `sample_pass`).
    batches: Vec<PhysicsBatch>,
    /// Node indices of the passthrough nodes (scalar-authoritative), so the
    /// rack ambient fan-out does not scan 100k `NodeSim` structs per tick.
    passthrough_idx: Vec<usize>,
    /// Per-shard reduction slots for the parallel passes (one slot on the
    /// serial path).
    shard_outs: Vec<ShardOut>,
    /// Per-node heat slots for the rack reduction: each pass fills its
    /// shard's rows, the coordinator folds them in node order so the f64
    /// summation order matches the historical serial loop exactly.
    heat_scratch: Vec<f64>,
    /// Per-shard journal scratch: parallel passes tee events here and the
    /// coordinator drains shard 0, 1, … — i.e. node order — into the
    /// journal after each pass. Pre-reserved in `attach_journal`.
    event_scratch: Vec<VecSink>,
}

impl Simulation {
    /// Builds the cluster from a scenario, or reports why the scenario
    /// cannot be run (the [`Scenario::validate`] error).
    pub fn try_new(scenario: Scenario) -> Result<Self, ScenarioError> {
        scenario.validate()?;
        let mut nodes: Vec<NodeSim> =
            (0..scenario.nodes).map(|i| NodeSim::build(&scenario, i)).collect();
        let ticks_per_sample = (scenario.sample_period_s / scenario.dt_s).round() as u64;
        // validate() rejects sample_period_s < dt_s, so this cannot be 0 —
        // a 0 here would make `is_multiple_of` false forever and silently
        // disable the whole sampling path (sensors, fan/tDVFS daemons).
        assert!(ticks_per_sample >= 1, "sampling period shorter than the tick");
        let rack = scenario.rack.map(|cfg| {
            let idle_heat: f64 = nodes.iter().map(|ns| ns.node.heat_output_w()).sum();
            let model = crate::rack::RackModel::new(cfg, idle_heat);
            // Nodes breathe the rack air from t = 0.
            for ns in &mut nodes {
                ns.node.set_ambient_c(model.air_c());
            }
            model
        });
        // More shards than nodes would only spin idle workers; threads = 1
        // (the default) skips the pool entirely and runs the serial loop.
        let shards = scenario.threads.min(nodes.len()).max(1);
        let pool = (shards > 1).then(|| WorkerPool::new(shards));
        let heat_scratch = if rack.is_some() { vec![0.0; nodes.len()] } else { Vec::new() };
        let shard_outs = vec![ShardOut::default(); shards];
        // One physics batch per shard, loaded from the post-attach (and
        // post-rack-ambient) node state so the lanes resume bit-exactly.
        let batches: Vec<PhysicsBatch> = (0..shards)
            .map(|s| {
                let range = shard_range(nodes.len(), shards, s);
                let mut batch =
                    PhysicsBatch::from_nodes(nodes[range.clone()].iter().map(|ns| &ns.node));
                for (j, ns) in nodes[range].iter().enumerate() {
                    batch.set_passthrough(j, ns.passthrough);
                }
                batch
            })
            .collect();
        let passthrough_idx =
            nodes.iter().enumerate().filter(|(_, ns)| ns.passthrough).map(|(i, _)| i).collect();
        Ok(Self {
            pool,
            scenario,
            nodes,
            rack,
            rack_air: unitherm_metrics::TimeSeries::new("rack.air", "°C"),
            time_s: 0.0,
            ticks: 0,
            ticks_per_sample,
            finished_nodes: 0,
            journal: None,
            batches,
            passthrough_idx,
            shard_outs,
            heat_scratch,
            event_scratch: Vec::new(),
        })
    }

    /// Builds the cluster from a scenario.
    ///
    /// # Panics
    /// On an invalid scenario; library callers who want the
    /// [`Scenario::validate`] error instead use [`Simulation::try_new`].
    pub fn new(scenario: Scenario) -> Self {
        Self::try_new(scenario).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Attaches a cluster-wide event journal: every node's control-plane
    /// event stream is teed into `sink` in addition to the per-node rings.
    /// The sink sees records in tick order (node order within a tick) at
    /// every thread count.
    pub fn attach_journal(&mut self, sink: Box<dyn EventSink>) {
        // If a journal sink hits an I/O error mid-run it latches the error
        // and stops writing; `into_report` surfaces it as
        // `RunReport::journal_warning` so a truncated journal is visible in
        // the report instead of only on `finish()`.
        self.journal = Some(sink);
        if let Some(pool) = &self.pool {
            // One pre-reserved scratch per shard; a tick rarely emits more
            // than a few events per node, so the reserve makes the buffer
            // effectively fixed-capacity (growth stays possible but is
            // amortized away and never affects determinism).
            self.event_scratch = (0..pool.shards())
                .map(|s| {
                    let mut sink = VecSink::default();
                    let shard_nodes = shard_range(self.nodes.len(), pool.shards(), s).len();
                    sink.records.reserve(32 * shard_nodes.max(1));
                    sink
                })
                .collect();
        }
    }

    /// Attaches a cluster-wide `unitherm-bjl/v1` binary event journal (see
    /// `docs/FORMATS.md` §5): the compact, seekable sibling of the JSONL
    /// [`Simulation::attach_journal`] path. The header is stamped with the
    /// scenario's tick width, so replay tooling can seek the file by tick.
    /// Callers wanting buffering should pass a `BufWriter`.
    pub fn attach_binary_journal<W: std::io::Write + 'static>(&mut self, out: W) {
        let dt_s = self.scenario.dt_s;
        self.attach_journal(Box::new(unitherm_obs::BinaryJournalWriter::new(out, dt_s)));
    }

    /// Current simulated time.
    pub fn time_s(&self) -> f64 {
        self.time_s
    }

    /// Immutable access to the nodes (diagnostics, tests).
    ///
    /// Between samples the hot physics state of non-passthrough nodes lives
    /// in the structure-of-arrays lanes, so the scalar `Node` structs seen
    /// here can lag by up to one sample period; [`Simulation::nodes_synced`]
    /// stores the lanes back first.
    pub fn nodes(&self) -> &[NodeSim] {
        &self.nodes
    }

    /// Like [`Simulation::nodes`], but stores the physics lanes back into
    /// the scalar nodes first, so every `Node` reflects the current tick.
    pub fn nodes_synced(&mut self) -> &[NodeSim] {
        self.sync_batches();
        &self.nodes
    }

    /// Advances the cluster one tick.
    ///
    /// The loop is fused into two passes over the nodes (plus the rack /
    /// sampling work that genuinely needs a completed pass) and performs no
    /// heap allocation in steady state — the barrier reduction folds into
    /// pass A instead of collecting per-rank states into a scratch `Vec`.
    /// With `Scenario::threads > 1` both passes (and the sampling pass) run
    /// shard-parallel on the persistent `pool::WorkerPool` with
    /// bit-identical results; the default runs the serial loop unchanged.
    pub fn tick(&mut self) {
        if self.pool.is_some() {
            self.tick_sharded();
        } else {
            self.tick_serial();
        }
    }

    /// The single-threaded tick loop (`threads = 1`): the shared pass
    /// functions over the lone shard.
    fn tick_serial(&mut self) {
        let dt = self.scenario.dt_s;
        self.ticks += 1;
        self.time_s += dt;
        let finite = self.scenario.workload.is_finite();

        // Pass A — workloads advance; the barrier reduction folds in.
        // Release is all-or-nothing, so the decision needs every rank's
        // post-advance state and cannot merge with pass B.
        let batch = &mut self.batches[0];
        let out = &mut self.shard_outs[0];
        workload_pass(&mut self.nodes, batch, dt, out);
        let release = out.unfinished_parked && out.any_parked;

        // Pass B — per-tick daemons + physics (lanes for fast nodes), rack
        // heat capture, and finish times.
        hardware_pass(
            &mut self.nodes,
            batch,
            dt,
            self.time_s,
            release,
            finite,
            self.rack.is_some().then_some(&mut self.heat_scratch[..]),
            self.journal.as_deref_mut(),
            out,
        );
        self.finished_nodes += out.finished_delta;

        self.step_rack(dt);

        // Sampling path at 4 Hz: lanes store back, daemons run, lanes
        // reload — fused per node so each cache line is touched once.
        if self.ticks.is_multiple_of(self.ticks_per_sample) {
            sample_pass(
                &mut self.nodes,
                &mut self.batches[0],
                self.time_s,
                self.journal.as_deref_mut(),
            );
            self.record_rack_air();
        }
    }

    /// Rack air coupling: folds the per-node heat slots in node order (the
    /// exact historical `heat += …` summation), steps the shared intake-air
    /// volume, and fans the new ambient out — to every batch lane, and to
    /// the scalar nodes of the passthrough set.
    fn step_rack(&mut self, dt: f64) {
        let Some(rack) = &mut self.rack else { return };
        let heat = self.heat_scratch.iter().fold(0.0f64, |acc, h| acc + h);
        rack.step(dt, heat);
        let air = rack.air_c();
        for batch in &mut self.batches {
            batch.set_ambient_all(air);
        }
        for &i in &self.passthrough_idx {
            self.nodes[i].node.set_ambient_c(air);
        }
    }

    /// Appends the rack air sample when a rack is coupled and series
    /// recording is on.
    fn record_rack_air(&mut self) {
        if let Some(rack) = &self.rack {
            if self.scenario.record_series {
                self.rack_air.push(self.time_s, rack.air_c());
            }
        }
    }

    /// The node-parallel tick loop (`threads > 1`): the same passes as
    /// [`Self::tick_serial`], shard-parallel on the worker pool.
    ///
    /// Determinism: the barrier decision folds exact booleans; rack heat is
    /// captured per node and folded here in node order (the serial
    /// summation order); journal events drain shard 0, 1, … — node order —
    /// after each pass. See `crate::pool` for the full argument.
    fn tick_sharded(&mut self) {
        let dt = self.scenario.dt_s;
        self.ticks += 1;
        self.time_s += dt;
        let pool = self.pool.as_ref().expect("tick_sharded requires a pool");
        let teeing = self.journal.is_some();
        let finite = self.scenario.workload.is_finite();

        // Pass A — workloads advance shard-parallel; the barrier reduction
        // folds per shard, then across shards (order-free booleans).
        pool.run(
            &mut self.nodes,
            &mut self.batches,
            PassKind::Workload { dt_s: dt },
            None,
            &mut self.shard_outs,
            None,
        );
        let unfinished_parked = self.shard_outs.iter().all(|o| o.unfinished_parked);
        let any_parked = self.shard_outs.iter().any(|o| o.any_parked);
        let release = unfinished_parked && any_parked;

        // Pass B — barrier release + per-tick daemons + physics; workers
        // capture per-node heat and buffer journal events per shard.
        let couple_rack = self.rack.is_some();
        if teeing {
            for scratch in &mut self.event_scratch {
                scratch.records.clear();
            }
        }
        pool.run(
            &mut self.nodes,
            &mut self.batches,
            PassKind::Hardware { dt_s: dt, now_s: self.time_s, release, couple_rack, finite },
            couple_rack.then_some(&mut self.heat_scratch[..]),
            &mut self.shard_outs,
            teeing.then_some(&mut self.event_scratch[..]),
        );
        self.finished_nodes += self.shard_outs.iter().map(|o| o.finished_delta).sum::<usize>();
        if let Some(journal) = &mut self.journal {
            for scratch in &self.event_scratch {
                for rec in &scratch.records {
                    journal.record(rec);
                }
            }
        }

        self.step_rack(dt);

        // Sampling path at 4 Hz, shard-parallel with the same journal
        // buffering.
        if self.ticks.is_multiple_of(self.ticks_per_sample) {
            if teeing {
                for scratch in &mut self.event_scratch {
                    scratch.records.clear();
                }
            }
            let pool = self.pool.as_ref().expect("tick_sharded requires a pool");
            pool.run(
                &mut self.nodes,
                &mut self.batches,
                PassKind::Sample { now_s: self.time_s },
                None,
                &mut self.shard_outs,
                teeing.then_some(&mut self.event_scratch[..]),
            );
            if let Some(journal) = &mut self.journal {
                for scratch in &self.event_scratch {
                    for rec in &scratch.records {
                        journal.record(rec);
                    }
                }
            }
            self.record_rack_air();
        }
    }

    /// True when every rank's workload finished.
    pub fn all_finished(&self) -> bool {
        self.finished_nodes == self.nodes.len()
    }

    /// Runs to completion (every rank finished, plus the configured
    /// cooldown) or to the time limit, whichever comes first, and produces
    /// the report.
    pub fn run(mut self) -> RunReport {
        let finite = self.scenario.workload.is_finite();
        let mut finished_at: Option<f64> = None;
        while self.time_s < self.scenario.max_time_s {
            self.tick();
            if finite && finished_at.is_none() && self.all_finished() {
                finished_at = Some(self.time_s);
            }
            if let Some(t) = finished_at {
                if self.time_s >= t + self.scenario.cooldown_s {
                    break;
                }
            }
        }
        self.into_report()
    }

    /// Stores every non-passthrough node's physics lanes back into its
    /// scalar `Node` and flushes the batched-tick counters. Idempotent —
    /// a second call with no ticks in between stores the same bits and
    /// drains zero skipped ticks.
    fn sync_batches(&mut self) {
        let shards = self.batches.len();
        let len = self.nodes.len();
        for (s, batch) in self.batches.iter_mut().enumerate() {
            let range = shard_range(len, shards, s);
            for (j, ns) in self.nodes[range].iter_mut().enumerate() {
                if !ns.passthrough {
                    batch.store(j, &mut ns.node);
                    ns.counters.ticks_skipped += batch.take_skipped(j);
                }
            }
        }
    }

    /// Finalizes the report from the current state.
    pub fn into_report(mut self) -> RunReport {
        self.sync_batches();
        let completed = self.nodes.iter().all(|ns| ns.finish_time_s.is_some());
        let exec_time_s = if completed {
            self.nodes.iter().filter_map(|ns| ns.finish_time_s).fold(0.0f64, f64::max)
        } else {
            self.time_s
        };

        let journal_warning = self.journal.as_ref().and_then(|j| j.sink_error());

        let nodes = self
            .nodes
            .into_iter()
            .map(|ns| NodeReport {
                temp: ns.rec.temp,
                duty: ns.rec.duty,
                freq: ns.rec.freq,
                power: ns.rec.power,
                util: ns.rec.util,
                freq_events: ns.rec.freq_events,
                freq_transitions: ns.node.cpu().freq_transition_count(),
                throttle_events: ns.node.cpu().throttle_event_count(),
                failsafe_engagements: ns.plane.failsafe_engagement_count(),
                shut_down: ns.node.cpu().is_shut_down(),
                avg_wall_power_w: ns.node.meter().average_power_w(),
                energy_j: ns.node.meter().energy_j(),
                temp_summary: ns.rec.temp_stats.summary(),
                duty_summary: ns.rec.duty_stats.summary(),
                finish_time_s: ns.finish_time_s,
                counters: ns.counters,
                events_dropped: ns.events.dropped(),
                events: ns.events.to_vec(),
                faults_applied: ns.node.fault_log().to_vec(),
            })
            .collect();

        RunReport {
            name: self.scenario.name.clone(),
            fan_label: self.scenario.fan_label(),
            dvfs_label: self.scenario.dvfs_label(),
            workload_label: self.scenario.workload.label(),
            nodes,
            wall_time_s: self.time_s,
            completed,
            exec_time_s,
            rack_air: if self.rack.is_some() { Some(self.rack_air) } else { None },
            journal_warning,
        }
    }
}

// --- Shared per-shard pass bodies -----------------------------------------
//
// The serial loop and the worker pool's `exec_shard` both run these exact
// functions over (their slice of) the nodes plus the matching physics batch,
// so the two paths cannot drift apart. `nodes` and `batch` are index-aligned:
// slot `i` of the batch mirrors `nodes[i]`.

/// Pass A: advance every rank's workload and fold the barrier flags into
/// `out`. Fast (non-passthrough) ranks read their execution speed from and
/// write their load into the lanes; passthrough ranks use the scalar node.
pub(crate) fn workload_pass(
    nodes: &mut [NodeSim],
    batch: &mut PhysicsBatch,
    dt_s: f64,
    out: &mut ShardOut,
) {
    out.unfinished_parked = true;
    out.any_parked = false;
    for (i, ns) in nodes.iter_mut().enumerate() {
        if !ns.passthrough {
            let speed = batch.speed_factor(i);
            let w = ns.workload.advance(dt_s, speed);
            batch.set_load(i, w.utilization, w.activity);
            // Endless workloads are `Running` by contract — skip the
            // second virtual dispatch on the hot path.
            if ns.endless {
                out.unfinished_parked = false;
                continue;
            }
            match ns.workload.state() {
                WorkState::AtBarrier(_) => out.any_parked = true,
                WorkState::Finished => {}
                _ => out.unfinished_parked = false,
            }
            continue;
        }
        match ns.tick_workload(dt_s) {
            WorkState::AtBarrier(_) => out.any_parked = true,
            WorkState::Finished => {}
            _ => out.unfinished_parked = false,
        }
    }
}

/// Pass B: optional barrier release, per-tick daemons + physics (lanes for
/// fast ranks, the scalar tick for passthrough ranks), per-node heat
/// capture, finish detection.
///
/// When the whole range is batchable the pass takes the pure-lane route:
/// barrier release and finish detection touch only workload state — disjoint
/// from the physics lanes — so they hoist into their own ascending-index
/// loops around `tick_all` without perturbing per-node evaluation order.
/// Fast ranks emit no per-tick journal events (no tick daemons, no fault
/// sources), so the journal stream is unaffected.
#[allow(clippy::too_many_arguments)] // mirrors PassKind::Hardware exactly
pub(crate) fn hardware_pass(
    nodes: &mut [NodeSim],
    batch: &mut PhysicsBatch,
    dt_s: f64,
    now_s: f64,
    release: bool,
    finite: bool,
    mut heat: Option<&mut [f64]>,
    mut journal: Option<&mut (dyn EventSink + 'static)>,
    out: &mut ShardOut,
) {
    out.finished_delta = 0;
    batch.begin_tick(dt_s);
    if batch.all_fast() {
        if release {
            for ns in nodes.iter_mut() {
                ns.workload.release_barrier();
            }
        }
        batch.tick_all(dt_s);
        if let Some(heat) = heat {
            batch.write_heat(heat);
        }
        if finite {
            for ns in nodes.iter_mut() {
                if ns.finish_time_s.is_none() && ns.workload.is_finished() {
                    ns.finish_time_s = Some(now_s);
                    out.finished_delta += 1;
                }
            }
        }
        return;
    }
    for (i, ns) in nodes.iter_mut().enumerate() {
        if release {
            ns.workload.release_barrier();
        }
        if ns.passthrough {
            ns.tick_hardware(dt_s, now_s, journal.as_deref_mut());
        } else {
            batch.tick_node(i, dt_s);
        }
        if let Some(heat) = heat.as_deref_mut() {
            heat[i] = if ns.passthrough { ns.node.heat_output_w() } else { batch.heat_output_w(i) };
        }
        if ns.finish_time_s.is_none() && ns.workload.is_finished() {
            ns.finish_time_s = Some(now_s);
            out.finished_delta += 1;
        }
    }
}

/// The 4 Hz sampling pass: for each fast rank, store the lanes back into
/// the scalar node, run the sampling path (sensor read, control plane,
/// recorders), and reload the lanes from the possibly-actuated node — fused
/// per node so each node's cache lines are touched once per sample.
/// Batched ticks flush into the node's `ticks_skipped` counter here, exactly
/// matching the scalar path's per-tick early-out accounting.
pub(crate) fn sample_pass(
    nodes: &mut [NodeSim],
    batch: &mut PhysicsBatch,
    now_s: f64,
    mut journal: Option<&mut (dyn EventSink + 'static)>,
) {
    for (i, ns) in nodes.iter_mut().enumerate() {
        if ns.passthrough {
            ns.on_sample(now_s, journal.as_deref_mut());
        } else {
            batch.store(i, &mut ns.node);
            ns.counters.ticks_skipped += batch.take_skipped(i);
            ns.on_sample(now_s, journal.as_deref_mut());
            batch.reload_control(i, &ns.node);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::WorkloadSpec;
    use crate::scheme::{DvfsScheme, FanScheme};
    use unitherm_core::control_array::Policy;
    use unitherm_workload::{NpbBenchmark, NpbClass, Segment};

    #[test]
    fn idle_cluster_stays_cool_and_runs_to_limit() {
        let report = Simulation::new(
            Scenario::new("idle")
                .with_nodes(2)
                .with_workload(WorkloadSpec::Idle)
                .with_max_time(30.0),
        )
        .run();
        assert!(!report.completed, "idle runs to the limit");
        assert!((report.wall_time_s - 30.0).abs() < 0.1);
        assert!(report.avg_temp_c() < 45.0, "idle temp {}", report.avg_temp_c());
        assert_eq!(report.total_freq_transitions(), 0);
    }

    #[test]
    fn failed_journal_sink_surfaces_as_report_warning() {
        struct Failing;
        impl std::io::Write for Failing {
            fn write(&mut self, _buf: &[u8]) -> std::io::Result<usize> {
                Err(std::io::Error::new(std::io::ErrorKind::BrokenPipe, "disk full"))
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }
        let scenario = Scenario::new("burn")
            .with_nodes(1)
            .with_workload(WorkloadSpec::CpuBurn)
            .with_fan(FanScheme::dynamic(Policy::MODERATE, 60))
            .with_max_time(30.0);

        // JSONL sink: first event write fails, and the report says so.
        let mut sim = Simulation::new(scenario.clone());
        sim.attach_journal(Box::new(unitherm_obs::JournalWriter::new(Failing)));
        let report = sim.run();
        let warning = report.journal_warning.expect("failed sink must be surfaced");
        assert!(warning.contains("disk full"), "{warning}");

        // Binary sink: the header write already fails.
        let mut sim = Simulation::new(scenario.clone());
        sim.attach_binary_journal(Failing);
        let report = sim.run();
        assert!(report.journal_warning.is_some(), "binary sink failure must be surfaced");

        // A healthy sink leaves the warning empty.
        let mut sim = Simulation::new(scenario);
        sim.attach_binary_journal(Vec::new());
        let report = sim.run();
        assert_eq!(report.journal_warning, None);
    }

    #[test]
    fn npb_job_completes_near_nominal_time() {
        let report = Simulation::new(
            Scenario::new("bt-a")
                .with_nodes(4)
                .with_workload(WorkloadSpec::Npb { bench: NpbBenchmark::Bt, class: NpbClass::A })
                .with_fan(FanScheme::Constant { duty: 75 })
                .with_max_time(200.0),
        )
        .run();
        assert!(report.completed, "BT.A must finish within 200 s");
        let nominal = NpbBenchmark::Bt.nominal_duration_s(NpbClass::A);
        assert!(
            (report.exec_time_s - nominal).abs() < nominal * 0.10,
            "exec {} vs nominal {nominal}",
            report.exec_time_s
        );
    }

    #[test]
    fn barrier_couples_ranks() {
        // All ranks must finish within a whisker of each other despite
        // per-rank wobble, because barriers re-synchronize every iteration.
        let report = Simulation::new(
            Scenario::new("bt-a")
                .with_nodes(4)
                .with_workload(WorkloadSpec::Npb { bench: NpbBenchmark::Bt, class: NpbClass::A })
                .with_fan(FanScheme::Constant { duty: 75 })
                .with_max_time(200.0),
        )
        .run();
        let finishes: Vec<f64> = report.nodes.iter().map(|n| n.finish_time_s.unwrap()).collect();
        let spread = finishes.iter().cloned().fold(f64::NEG_INFINITY, f64::max)
            - finishes.iter().cloned().fold(f64::INFINITY, f64::min);
        assert!(spread < 1.0, "finish spread {spread} ({finishes:?})");
    }

    #[test]
    fn script_workload_completes() {
        let report = Simulation::new(
            Scenario::new("script")
                .with_nodes(1)
                .with_workload(WorkloadSpec::Script(vec![
                    Segment::new(5.0, 1.0),
                    Segment::new(5.0, 0.1),
                ]))
                .with_max_time(60.0),
        )
        .run();
        assert!(report.completed);
        assert!((report.exec_time_s - 10.0).abs() < 0.5, "exec {}", report.exec_time_s);
    }

    #[test]
    fn deterministic_given_seed() {
        let build = || {
            Scenario::new("det")
                .with_nodes(2)
                .with_seed(77)
                .with_workload(WorkloadSpec::CpuBurn)
                .with_fan(FanScheme::dynamic(Policy::MODERATE, 100))
                .with_max_time(60.0)
        };
        let a = Simulation::new(build()).run();
        let b = Simulation::new(build()).run();
        assert_eq!(a.avg_node_power_w(), b.avg_node_power_w());
        assert_eq!(a.avg_temp_c(), b.avg_temp_c());
        assert_eq!(a.nodes[0].temp.samples(), b.nodes[0].temp.samples());
    }

    #[test]
    fn dynamic_fan_cools_burn_vs_weak_policy() {
        let run = |pp: u32| {
            Simulation::new(
                Scenario::new(format!("burn-p{pp}"))
                    .with_nodes(1)
                    .with_workload(WorkloadSpec::CpuBurn)
                    .with_fan(FanScheme::dynamic(Policy::new(pp).unwrap(), 100))
                    .with_max_time(240.0),
            )
            .run()
        };
        let aggressive = run(25);
        let weak = run(75);
        assert!(
            aggressive.avg_temp_c() < weak.avg_temp_c(),
            "P25 {} vs P75 {}",
            aggressive.avg_temp_c(),
            weak.avg_temp_c()
        );
        assert!(
            aggressive.avg_duty_pct() > weak.avg_duty_pct(),
            "P25 duty {} vs P75 duty {}",
            aggressive.avg_duty_pct(),
            weak.avg_duty_pct()
        );
    }

    #[test]
    fn tdvfs_events_recorded_with_capped_fan() {
        let report = Simulation::new(
            Scenario::new("tdvfs")
                .with_nodes(1)
                .with_workload(WorkloadSpec::CpuBurn)
                .with_fan(FanScheme::dynamic(Policy::MODERATE, 25))
                .with_dvfs(DvfsScheme::tdvfs(Policy::MODERATE))
                .with_max_time(240.0),
        )
        .run();
        assert!(report.total_freq_transitions() > 0, "tDVFS must engage");
        assert!(report.first_dvfs_event_time_s().is_some());
        assert!(report.min_commanded_freq_mhz().unwrap() < 2400);
    }

    #[test]
    fn report_reflects_scenario_labels() {
        let report = Simulation::new(
            Scenario::new("labels")
                .with_nodes(1)
                .with_workload(WorkloadSpec::Idle)
                .with_fan(FanScheme::Constant { duty: 50 })
                .with_dvfs(DvfsScheme::cpuspeed())
                .with_max_time(5.0),
        )
        .run();
        assert_eq!(report.name, "labels");
        assert_eq!(report.fan_label, "constant(50%)");
        assert_eq!(report.dvfs_label, "CPUSPEED");
        assert_eq!(report.workload_label, "idle");
    }
}
