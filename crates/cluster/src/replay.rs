//! Journal-driven fault injection and deterministic replay.
//!
//! A recorded event journal (JSONL, one [`EventRecord`] per line — see
//! `docs/FORMATS.md`) tells us exactly when a run made interesting
//! decisions: a window level moved an actuator, tDVFS engaged because a
//! capped fan could not hold the threshold, the failsafe tripped. Those
//! moments are precisely where a long-lived control daemon is most
//! vulnerable to lying sensors and seizing fans — a fault that lands mid
//! decision exercises the recovery paths a random fault time usually
//! misses.
//!
//! [`derive_fault_plan`] closes that loop: it walks a journal with a
//! [`JournalCursor`] and pins faults to the *exact ticks* of the recorded
//! decisions (`tick = round(time_s / dt_s)`; the simulation stamps events
//! with `now_s = tick · dt_s`, so the mapping is exact):
//!
//! * a `ModeChange` gets a [`FaultEvent::SensorJitter`] burst — the
//!   controller must re-make the decision through a degraded sensing path;
//! * a `TdvfsEngage` gets a [`FaultEvent::PwmStuck`] window — in-band
//!   control engages exactly while the out-of-band actuator is wedged;
//! * a `FailsafeTrip` gets a [`FaultEvent::SensorDropout`] window — the
//!   watchdog's stale-sensor path fires again under a true blackout.
//!
//! The derived [`ReplayPlan`] applies as `Scenario::tick_faults`, which
//! [`crate::node_sim::NodeSim::build`] attaches to each node's
//! `TickFaultSchedule`. Delivery happens inside `Node::tick` — per-node
//! state only — so the replay inherits the sharded tick loop's bit-identical
//! guarantee at any `threads` count (see `DESIGN.md` §12).

use unitherm_obs::{record_tick, Event, EventRecord, InjectedFault, JournalCursor};
use unitherm_simnode::faults::{FaultEvent, TickFaultSchedule};

use crate::scenario::Scenario;

/// Maps a simulator fault onto the observability vocabulary: the event
/// `kind` plus the variant-specific magnitude recorded with it.
pub fn classify_fault(ev: FaultEvent) -> (InjectedFault, f64) {
    match ev {
        FaultEvent::FanFailure => (InjectedFault::FanFailure, 0.0),
        FaultEvent::FanRepair => (InjectedFault::FanRepair, 0.0),
        FaultEvent::SensorDropout => (InjectedFault::SensorDropout, 0.0),
        FaultEvent::SensorRestore => (InjectedFault::SensorRestore, 0.0),
        FaultEvent::I2cFailure => (InjectedFault::I2cFailure, 0.0),
        FaultEvent::I2cRecovery => (InjectedFault::I2cRecovery, 0.0),
        FaultEvent::AmbientStep(t) => (InjectedFault::AmbientStep, t),
        FaultEvent::PwmStuck => (InjectedFault::PwmStuck, 0.0),
        FaultEvent::PwmRelease => (InjectedFault::PwmRelease, 0.0),
        FaultEvent::SensorJitter(std) => (InjectedFault::SensorJitter, std),
    }
}

/// Tuning for [`derive_fault_plan`]. The defaults produce short, bounded
/// fault windows sized for the 50 ms tick (a 40-tick jitter burst is 2 s of
/// degraded sensing — eight 4 Hz samples).
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct ReplayOptions {
    /// Extra sensor noise injected at each recorded `ModeChange`, °C
    /// std-dev.
    #[serde(default = "default_jitter_std")]
    pub jitter_std_c: f64,
    /// Ticks a jitter burst lasts before it is cleared.
    #[serde(default = "default_jitter_hold")]
    pub jitter_hold_ticks: u64,
    /// Ticks the fan PWM stays stuck after a recorded `TdvfsEngage`.
    #[serde(default = "default_stuck_hold")]
    pub stuck_hold_ticks: u64,
    /// Ticks the sensors stay dropped out after a recorded `FailsafeTrip`.
    #[serde(default = "default_dropout_hold")]
    pub dropout_hold_ticks: u64,
    /// Cap on injected fault *windows* (injection + recovery pair) per
    /// node, so an event-dense journal cannot schedule unbounded faults.
    #[serde(default = "default_max_per_node")]
    pub max_faults_per_node: usize,
}

fn default_jitter_std() -> f64 {
    0.75
}
fn default_jitter_hold() -> u64 {
    40
}
fn default_stuck_hold() -> u64 {
    200
}
fn default_dropout_hold() -> u64 {
    100
}
fn default_max_per_node() -> usize {
    8
}

impl Default for ReplayOptions {
    fn default() -> Self {
        Self {
            jitter_std_c: default_jitter_std(),
            jitter_hold_ticks: default_jitter_hold(),
            stuck_hold_ticks: default_stuck_hold(),
            dropout_hold_ticks: default_dropout_hold(),
            max_faults_per_node: default_max_per_node(),
        }
    }
}

/// One fault window derived from a recorded decision: where it was pinned
/// and which journal record triggered it.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct DerivedFault {
    /// Node the fault targets (the recorded event's node).
    pub node: usize,
    /// Tick the injection lands on (`round(time_s / dt_s)` of the trigger).
    pub tick: u64,
    /// The injected fault.
    pub fault: FaultEvent,
    /// Tick the paired recovery event lands on.
    pub recovery_tick: u64,
    /// Timestamp of the journal record that triggered the derivation, s.
    pub trigger_time_s: f64,
}

/// A derived, tick-addressed fault plan ready to apply to a scenario.
#[derive(Debug, Clone, Default, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct ReplayPlan {
    /// Per-node schedules (injection + recovery events), keyed by node
    /// index; the exact value [`ReplayPlan::apply`] installs as
    /// `Scenario::tick_faults`.
    pub schedules: Vec<(usize, TickFaultSchedule)>,
    /// The fault windows, in journal order, with their triggers — for
    /// reports and walkthroughs.
    pub derived: Vec<DerivedFault>,
}

impl ReplayPlan {
    /// Number of derived fault windows.
    pub fn len(&self) -> usize {
        self.derived.len()
    }

    /// True when the journal yielded nothing to replay against.
    pub fn is_empty(&self) -> bool {
        self.derived.is_empty()
    }

    /// Installs the derived schedules on a scenario (replacing any existing
    /// `tick_faults`); the stochastic `faults` plans are left untouched and
    /// compose with the replayed schedule.
    pub fn apply(&self, mut scenario: Scenario) -> Scenario {
        scenario.tick_faults = self.schedules.clone();
        scenario
    }
}

/// A journal record [`derive_fault_plan`] cannot map onto the scenario —
/// the replay analogue of `std::io::ErrorKind::InvalidData`. Each variant
/// identifies the offending record by its position in the journal, so a
/// corrupt line in a multi-megabyte JSONL file can be found and excised.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ReplayError {
    /// A record's `time_s` is NaN, infinite, or negative: it has no tick.
    /// (Before this check, NaN and negative times silently rounded to tick
    /// 0 and were dropped as "before the run".)
    InvalidTime {
        /// Zero-based record index within the journal.
        index: usize,
        /// The record's node field.
        node: u32,
        /// The offending timestamp.
        time_s: f64,
    },
    /// A record names a node the scenario does not have.
    NodeOutOfRange {
        /// Zero-based record index within the journal.
        index: usize,
        /// The record's node field.
        node: u32,
        /// The scenario's fleet size; valid nodes are `0..nodes`.
        nodes: usize,
    },
}

impl std::fmt::Display for ReplayError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ReplayError::InvalidTime { index, node, time_s } => write!(
                f,
                "journal record {index} (node {node}): time_s {time_s} is not a finite, \
                 non-negative timestamp"
            ),
            ReplayError::NodeOutOfRange { index, node, nodes } => write!(
                f,
                "journal record {index}: node {node} is outside the scenario's fleet \
                 (valid nodes are 0..{nodes})"
            ),
        }
    }
}

impl std::error::Error for ReplayError {}

impl From<ReplayError> for std::io::Error {
    fn from(e: ReplayError) -> Self {
        std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string())
    }
}

/// Per-node derivation state: open fault windows and the window budget.
#[derive(Clone, Copy, Default)]
struct NodeWindows {
    jitter_until: u64,
    stuck_until: u64,
    dropout_until: u64,
    windows: usize,
}

/// Derives a tick-addressed fault plan from a recorded journal.
///
/// `scenario` supplies the geometry the journal is replayed against: the
/// tick width (`dt_s`, for the time → tick mapping), the node count and the
/// run length (`max_time_s`; windows that would open after the end are
/// skipped). Overlapping windows of the same kind on the same node are
/// coalesced into the first one, so a recovery event can never cancel a
/// later injection.
///
/// # Errors
/// Returns a [`ReplayError`] identifying the offending record when the
/// journal is corrupt: a non-finite or negative `time_s`, or a `node` the
/// scenario does not have. A corrupt journal is a corrupt *recording* — the
/// derivation refuses to guess which faults it meant.
pub fn derive_fault_plan(
    records: &[EventRecord],
    scenario: &Scenario,
    opts: &ReplayOptions,
) -> Result<ReplayPlan, ReplayError> {
    derive_fault_plan_from_cursor(JournalCursor::new(records), scenario, opts)
}

/// [`derive_fault_plan`] over any journal encoding: the cursor abstracts
/// whether records come from parsed JSONL or a `unitherm-bjl/v1`
/// [`unitherm_obs::BinaryJournalReader`]
/// (via [`JournalCursor::from_binary`]), and the derivation is identical —
/// the same journal in either encoding yields the same [`ReplayPlan`].
///
/// The walk exploits the journal ordering contract (`time_s` never
/// decreases — `docs/FORMATS.md` §2): it opens by seeking to tick 1, which
/// on a binary source is an `O(log n)` search instead of a scan, and stops
/// at the first record past the scenario horizon rather than draining the
/// tail.
///
/// # Errors
/// See [`derive_fault_plan`]. Record indices in errors are positions
/// within the whole journal, not relative to the seek.
pub fn derive_fault_plan_from_cursor(
    mut cursor: JournalCursor<'_>,
    scenario: &Scenario,
    opts: &ReplayOptions,
) -> Result<ReplayPlan, ReplayError> {
    let last_tick = (scenario.max_time_s / scenario.dt_s).round() as u64;
    let mut windows = vec![NodeWindows::default(); scenario.nodes];
    let mut schedules: Vec<TickFaultSchedule> = vec![TickFaultSchedule::none(); scenario.nodes];
    let mut derived = Vec::new();

    // Tick-0 records can never open a window; skipping them by tick is the
    // seekable-format fast path. Records with invalid timestamps have no
    // tick and are never skipped, so the validation below still sees them.
    cursor.seek_tick(1, scenario.dt_s);
    loop {
        let rec_index = cursor.position();
        let Some(rec) = cursor.next() else { break };
        let Some(tick) = record_tick(rec.time_s, scenario.dt_s) else {
            return Err(ReplayError::InvalidTime {
                index: rec_index,
                node: rec.node,
                time_s: rec.time_s,
            });
        };
        if tick > last_tick {
            // Journals are tick-ordered; everything after this record is
            // past the scenario horizon too.
            break;
        }
        let node = rec.node as usize;
        if node >= scenario.nodes {
            return Err(ReplayError::NodeOutOfRange {
                index: rec_index,
                node: rec.node,
                nodes: scenario.nodes,
            });
        }
        if tick == 0 {
            continue;
        }
        let w = &mut windows[node];
        if w.windows >= opts.max_faults_per_node {
            continue;
        }
        let (fault, recovery, hold, open_until) = match rec.event {
            Event::ModeChange { .. } => (
                FaultEvent::SensorJitter(opts.jitter_std_c),
                FaultEvent::SensorJitter(0.0),
                opts.jitter_hold_ticks,
                &mut w.jitter_until,
            ),
            Event::TdvfsEngage { .. } => (
                FaultEvent::PwmStuck,
                FaultEvent::PwmRelease,
                opts.stuck_hold_ticks,
                &mut w.stuck_until,
            ),
            Event::FailsafeTrip { .. } => (
                FaultEvent::SensorDropout,
                FaultEvent::SensorRestore,
                opts.dropout_hold_ticks,
                &mut w.dropout_until,
            ),
            _ => continue,
        };
        if tick <= *open_until {
            // A same-kind window is still open on this node; injecting
            // again would let the earlier recovery land mid-window.
            continue;
        }
        let recovery_tick = tick.saturating_add(hold.max(1));
        *open_until = recovery_tick;
        w.windows += 1;
        schedules[node].schedule(tick, fault);
        schedules[node].schedule(recovery_tick, recovery);
        derived.push(DerivedFault { node, tick, fault, recovery_tick, trigger_time_s: rec.time_s });
    }

    let schedules = schedules.into_iter().enumerate().filter(|(_, s)| !s.is_empty()).collect();
    Ok(ReplayPlan { schedules, derived })
}

#[cfg(test)]
mod tests {
    use super::*;
    use unitherm_obs::{ActuatorKind, TripCause, WindowLevel};

    fn rec(time_s: f64, node: u32, event: Event) -> EventRecord {
        EventRecord { time_s, node, event }
    }

    fn mode_change() -> Event {
        Event::ModeChange {
            actuator: ActuatorKind::Fan,
            from: 20,
            to: 40,
            window_level: WindowLevel::L1,
        }
    }

    fn scenario() -> Scenario {
        Scenario::new("replay-test").with_nodes(2).with_max_time(300.0)
    }

    #[test]
    fn pins_each_decision_kind_to_its_exact_tick() {
        let records = vec![
            rec(5.0, 0, mode_change()),
            rec(10.0, 1, Event::TdvfsEngage { from_mhz: 2400, to_mhz: 2200 }),
            rec(20.0, 0, Event::FailsafeTrip { cause: TripCause::StaleSensor }),
        ];
        let plan = derive_fault_plan(&records, &scenario(), &ReplayOptions::default())
            .expect("clean journal derives");
        assert_eq!(plan.len(), 3);
        // dt = 0.05, so t=5 s is tick 100.
        assert_eq!(plan.derived[0].tick, 100);
        assert_eq!(plan.derived[0].fault, FaultEvent::SensorJitter(0.75));
        assert_eq!(plan.derived[0].recovery_tick, 140);
        assert_eq!(plan.derived[1].node, 1);
        assert_eq!(plan.derived[1].tick, 200);
        assert_eq!(plan.derived[1].fault, FaultEvent::PwmStuck);
        assert_eq!(plan.derived[2].tick, 400);
        assert_eq!(plan.derived[2].fault, FaultEvent::SensorDropout);
        // Node 0 carries jitter + dropout windows, node 1 the stuck window.
        assert_eq!(plan.schedules.len(), 2);
        assert_eq!(plan.schedules[0].1.len(), 4, "two windows = four events");
        assert_eq!(plan.schedules[1].1.len(), 2);
    }

    #[test]
    fn uninteresting_and_out_of_window_events_are_skipped() {
        let records = vec![
            rec(1.0, 0, Event::FailsafeRelease),
            rec(2.0, 0, Event::TdvfsRelease { to_mhz: 2400 }),
            rec(500.0, 0, mode_change()), // past max_time_s
        ];
        let plan = derive_fault_plan(&records, &scenario(), &ReplayOptions::default())
            .expect("skippable records are not errors");
        assert!(plan.is_empty());
        assert!(plan.schedules.is_empty());
    }

    #[test]
    fn foreign_node_is_a_named_error() {
        // Regression: a record for a node outside the fleet used to be
        // silently dropped, masking journals recorded against a different
        // scenario geometry.
        let records = vec![rec(1.0, 0, mode_change()), rec(3.0, 9, mode_change())];
        let err = derive_fault_plan(&records, &scenario(), &ReplayOptions::default())
            .expect_err("node 9 does not exist in a 2-node scenario");
        assert_eq!(err, ReplayError::NodeOutOfRange { index: 1, node: 9, nodes: 2 });
        let msg = err.to_string();
        assert!(msg.contains("record 1") && msg.contains("node 9"), "{msg}");
        let io: std::io::Error = err.into();
        assert_eq!(io.kind(), std::io::ErrorKind::InvalidData);
    }

    #[test]
    fn non_finite_or_negative_time_is_a_named_error() {
        // Regression: NaN and negative times rounded to tick 0 and were
        // silently dropped as "before the run started".
        for bad in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY, -1.0] {
            let records = vec![rec(1.0, 0, mode_change()), rec(bad, 1, mode_change())];
            let err = derive_fault_plan(&records, &scenario(), &ReplayOptions::default())
                .expect_err("corrupt timestamp must not derive");
            match err {
                ReplayError::InvalidTime { index, node, time_s } => {
                    assert_eq!(index, 1);
                    assert_eq!(node, 1);
                    assert!(time_s.is_nan() == bad.is_nan() && (bad.is_nan() || time_s == bad));
                }
                other => panic!("wrong error for {bad}: {other:?}"),
            }
            assert!(err.to_string().contains("record 1"), "{err}");
        }
    }

    #[test]
    fn overlapping_same_kind_windows_coalesce() {
        // Three mode changes inside one 40-tick (2 s) jitter window: only
        // the first injects, so its recovery cannot land mid-window of a
        // later injection.
        let records = vec![
            rec(5.0, 0, mode_change()),
            rec(5.5, 0, mode_change()),
            rec(6.0, 0, mode_change()),
            rec(8.0, 0, mode_change()), // tick 160 > 140: new window
        ];
        let plan =
            derive_fault_plan(&records, &scenario(), &ReplayOptions::default()).expect("derive");
        assert_eq!(plan.len(), 2);
        assert_eq!(plan.derived[0].tick, 100);
        assert_eq!(plan.derived[1].tick, 160);
    }

    #[test]
    fn per_node_window_budget_is_enforced() {
        let opts = ReplayOptions { max_faults_per_node: 2, ..ReplayOptions::default() };
        // Far-apart mode changes: every one would open a window.
        let records: Vec<EventRecord> =
            (1..20).map(|i| rec(f64::from(i) * 10.0, 0, mode_change())).collect();
        let plan = derive_fault_plan(&records, &scenario(), &opts).expect("derive");
        assert_eq!(plan.len(), 2);
    }

    #[test]
    fn both_encodings_derive_identical_plans() {
        let records = vec![
            rec(0.0, 0, mode_change()), // tick 0: seeked past in both
            rec(5.0, 0, mode_change()),
            rec(5.5, 0, mode_change()), // coalesces into the t=5 window
            rec(10.0, 1, Event::TdvfsEngage { from_mhz: 2400, to_mhz: 2200 }),
            rec(20.0, 0, Event::FailsafeTrip { cause: TripCause::StaleSensor }),
        ];
        let scenario = scenario();
        let from_jsonl = derive_fault_plan(&records, &scenario, &ReplayOptions::default())
            .expect("jsonl derives");
        let bytes = unitherm_obs::records_to_bjl(&records, scenario.dt_s);
        let reader = unitherm_obs::BinaryJournalReader::new(&bytes).expect("open");
        let from_bjl = derive_fault_plan_from_cursor(
            JournalCursor::from_binary(&reader),
            &scenario,
            &ReplayOptions::default(),
        )
        .expect("bjl derives");
        assert_eq!(from_jsonl, from_bjl);
        assert_eq!(from_jsonl.len(), 3);
    }

    #[test]
    fn binary_cursor_reports_absolute_record_indices_in_errors() {
        // The foreign-node record sits after the seek point; its index must
        // still be its position within the whole journal.
        let records = vec![
            rec(0.0, 0, mode_change()),
            rec(1.0, 0, mode_change()),
            rec(3.0, 9, mode_change()),
        ];
        let bytes = unitherm_obs::records_to_bjl(&records, scenario().dt_s);
        let reader = unitherm_obs::BinaryJournalReader::new(&bytes).expect("open");
        let err = derive_fault_plan_from_cursor(
            JournalCursor::from_binary(&reader),
            &scenario(),
            &ReplayOptions::default(),
        )
        .expect_err("node 9 does not exist");
        assert_eq!(err, ReplayError::NodeOutOfRange { index: 2, node: 9, nodes: 2 });
    }

    #[test]
    fn apply_installs_tick_faults_and_keeps_stochastic_plans() {
        use unitherm_simnode::faults::FaultPlan;
        let records = vec![rec(5.0, 0, mode_change())];
        let plan =
            derive_fault_plan(&records, &scenario(), &ReplayOptions::default()).expect("derive");
        let base = scenario().with_fault(1, FaultPlan::none().at(10.0, FaultEvent::FanFailure));
        let replayed = plan.apply(base);
        replayed.validate().unwrap();
        assert_eq!(replayed.tick_faults.len(), 1);
        assert_eq!(replayed.tick_faults[0].0, 0);
        assert_eq!(replayed.faults.len(), 1, "stochastic plan untouched");
    }

    #[test]
    fn options_round_trip_and_default_from_empty_json() {
        let opts = ReplayOptions::default();
        let json = serde_json::to_string(&opts).expect("serialize");
        let back: ReplayOptions = serde_json::from_str(&json).expect("deserialize");
        assert_eq!(back, opts);
        let sparse: ReplayOptions = serde_json::from_str("{}").expect("defaults");
        assert_eq!(sparse, opts);
    }
}
