//! The persistent node-parallel worker pool behind [`crate::sim::Simulation`].
//!
//! A simulation built with `Scenario::threads > 1` shards its nodes into
//! contiguous ranges and runs the per-node halves of every tick — workload
//! advance (pass A), daemons + physics (pass B), and the 4 Hz sampling
//! pass — shard-parallel on this pool. The pool is created once per
//! simulation and persists across ticks: at a 50 ms simulated dt a tick is
//! microseconds of work, so spawn-per-tick (or even scope-per-tick) would
//! dominate the run.
//!
//! # Determinism
//!
//! Results are bit-identical to the serial loop at every thread count:
//!
//! * per-node work is shared-nothing — a node's tick depends only on its
//!   own state plus tick-global inputs (the barrier-release decision, the
//!   rack air temperature) that are fixed before the pass starts;
//! * the two cross-node reductions are exact: the barrier flags are
//!   booleans (order-free), and rack heat is written **per node** into a
//!   scratch slot and folded by the coordinator in node order — the same
//!   left-to-right f64 summation the serial loop performs, independent of
//!   the shard layout;
//! * journal tees buffer per-shard in pre-reserved scratch and are drained
//!   into the sink in shard (= node) order after the pass, preserving the
//!   "tick order, node order within a tick" contract byte-for-byte.
//!
//! # Synchronization
//!
//! The coordinator publishes a [`Job`] (raw shard pointers + pass
//! parameters) under an epoch counter, executes shard 0 itself, and waits
//! for the workers' completion countdown. Workers spin briefly on the
//! epoch and then park, so an idle pool (a paused simulation, a pool
//! outliving its last tick) costs nothing; on oversubscribed machines the
//! park path keeps ticks correct, just not faster. Worker panics are
//! caught, carried across the countdown, and re-raised on the coordinator
//! thread with their original payload.

use std::cell::UnsafeCell;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::{JoinHandle, Thread};

use unitherm_obs::{EventSink, VecSink};
use unitherm_simnode::PhysicsBatch;

use crate::node_sim::NodeSim;

/// Which per-node pass to run over a shard.
#[derive(Clone, Copy)]
pub(crate) enum PassKind {
    /// Pass A: advance every rank's workload; fold the barrier flags.
    Workload {
        /// Physics tick, seconds.
        dt_s: f64,
    },
    /// Pass B: optional barrier release, per-tick daemons + physics,
    /// per-node heat capture, finish detection.
    Hardware {
        /// Physics tick, seconds.
        dt_s: f64,
        /// Simulated time after this tick.
        now_s: f64,
        /// Whether the barrier released this tick (decided from pass A).
        release: bool,
        /// Whether to capture per-node heat for the rack reduction.
        couple_rack: bool,
        /// Whether the workload can finish on its own (gates the pure-lane
        /// route in `sim::hardware_pass`).
        finite: bool,
    },
    /// The 4 Hz sampling pass: sensor read, control plane, recorders.
    Sample {
        /// Simulated time of the sample.
        now_s: f64,
    },
}

/// Per-shard reduction outputs, written by exactly one worker per pass and
/// read by the coordinator after the completion barrier.
#[derive(Clone, Copy, Default)]
pub(crate) struct ShardOut {
    /// Pass A: every non-finished rank in the shard is parked at a barrier.
    pub unfinished_parked: bool,
    /// Pass A: at least one rank in the shard is parked at a barrier.
    pub any_parked: bool,
    /// Pass B: ranks in the shard that finished on this tick.
    pub finished_delta: usize,
}

/// One parallel section: everything a worker needs to process its shard.
///
/// Raw pointers stand in for the `&mut` borrows the coordinator holds; the
/// run protocol guarantees workers only dereference them between the epoch
/// publish and their completion decrement, while the coordinator is parked
/// inside [`WorkerPool::run`] and the borrows are live.
#[derive(Clone, Copy)]
struct Job {
    nodes: *mut NodeSim,
    /// Per-shard physics batches (`shards` entries); slot `s` mirrors the
    /// node range of shard `s`.
    batches: *mut PhysicsBatch,
    len: usize,
    shards: usize,
    kind: PassKind,
    /// Per-node heat slots (`len` entries) or null when the pass does not
    /// capture heat.
    heat: *mut f64,
    /// Per-shard reduction slots (`shards` entries).
    outs: *mut ShardOut,
    /// Per-shard journal scratch (`shards` entries) or null when no
    /// journal is attached.
    scratch: *mut VecSink,
}

// SAFETY: the pointers are only dereferenced under the run protocol above,
// over disjoint shard ranges.
unsafe impl Send for Job {}

struct Shared {
    /// Bumped (release) to publish `job`; workers acquire-load it.
    epoch: AtomicUsize,
    /// The published job; valid for the epoch it was published under.
    job: UnsafeCell<Option<Job>>,
    /// Workers yet to finish the current job.
    remaining: AtomicUsize,
    /// Set (then epoch bumped) to shut the pool down.
    shutdown: AtomicBool,
    /// The coordinator thread, unparked by the last finishing worker.
    coordinator: Thread,
    /// First worker panic of the current job, re-raised by the coordinator.
    panic: Mutex<Option<Box<dyn std::any::Any + Send>>>,
}

// SAFETY: `job` is written only by the coordinator before the epoch bump
// and read by workers after acquiring the new epoch; `remaining` orders the
// hand-back.
unsafe impl Sync for Shared {}

/// Spins this long on the epoch / countdown before parking. Short, so a
/// pool on an oversubscribed (or single-core) machine backs off to the
/// scheduler quickly instead of burning the very cycles the shards need.
const SPIN_LIMIT: u32 = 512;

/// The persistent pool: `shards - 1` spawned workers plus the calling
/// thread, which always executes shard 0 itself.
pub(crate) struct WorkerPool {
    shared: Arc<Shared>,
    workers: Vec<Thread>,
    handles: Vec<JoinHandle<()>>,
    shards: usize,
}

/// The contiguous node range of shard `s` out of `shards` over `len` nodes.
pub(crate) fn shard_range(len: usize, shards: usize, s: usize) -> std::ops::Range<usize> {
    (s * len / shards)..((s + 1) * len / shards)
}

impl WorkerPool {
    /// Spawns `shards - 1` workers (the coordinator is shard 0).
    ///
    /// # Panics
    /// `shards` must be at least 2 — a 1-shard pool is the serial loop.
    pub fn new(shards: usize) -> Self {
        assert!(shards >= 2, "a pool needs at least two shards");
        let shared = Arc::new(Shared {
            epoch: AtomicUsize::new(0),
            job: UnsafeCell::new(None),
            remaining: AtomicUsize::new(0),
            shutdown: AtomicBool::new(false),
            coordinator: std::thread::current(),
            panic: Mutex::new(None),
        });
        let (tx, rx) = std::sync::mpsc::channel();
        let handles: Vec<JoinHandle<()>> = (1..shards)
            .map(|shard| {
                let shared = Arc::clone(&shared);
                let tx = tx.clone();
                std::thread::Builder::new()
                    .name(format!("unitherm-shard{shard}"))
                    .spawn(move || {
                        tx.send(std::thread::current()).expect("pool creator is alive");
                        drop(tx);
                        worker_loop(&shared, shard);
                    })
                    .expect("spawn pool worker")
            })
            .collect();
        drop(tx);
        let workers: Vec<Thread> = rx.iter().take(shards - 1).collect();
        Self { shared, workers, handles, shards }
    }

    /// Total shards (spawned workers + the coordinator).
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// Runs one pass over `nodes`, shard-parallel, returning when every
    /// shard (including the coordinator's own shard 0) has finished.
    ///
    /// `outs` must hold one slot per shard; `heat`, when given, one slot
    /// per node; `scratch`, when given, one pre-reserved sink per shard.
    pub fn run(
        &self,
        nodes: &mut [NodeSim],
        batches: &mut [PhysicsBatch],
        kind: PassKind,
        heat: Option<&mut [f64]>,
        outs: &mut [ShardOut],
        scratch: Option<&mut [VecSink]>,
    ) {
        assert_eq!(batches.len(), self.shards, "one physics batch per shard");
        assert_eq!(outs.len(), self.shards, "one reduction slot per shard");
        if let Some(heat) = &heat {
            assert_eq!(heat.len(), nodes.len(), "one heat slot per node");
        }
        if let Some(scratch) = &scratch {
            assert_eq!(scratch.len(), self.shards, "one journal scratch per shard");
        }
        let job = Job {
            nodes: nodes.as_mut_ptr(),
            batches: batches.as_mut_ptr(),
            len: nodes.len(),
            shards: self.shards,
            kind,
            heat: heat.map_or(std::ptr::null_mut(), |h| h.as_mut_ptr()),
            outs: outs.as_mut_ptr(),
            scratch: scratch.map_or(std::ptr::null_mut(), |s| s.as_mut_ptr()),
        };

        // Publish: countdown first, then the job, then the epoch (release)
        // so an acquiring worker sees both.
        self.shared.remaining.store(self.shards - 1, Ordering::Relaxed);
        // SAFETY: workers only read `job` after the epoch bump below; no
        // other writer exists.
        unsafe { *self.shared.job.get() = Some(job) };
        self.shared.epoch.fetch_add(1, Ordering::Release);
        for w in &self.workers {
            w.unpark();
        }

        // The coordinator is shard 0.
        // SAFETY: shard ranges are disjoint; shard 0 is ours alone.
        unsafe { exec_shard(&job, 0) };

        // Wait for the workers, spinning briefly before parking; the last
        // worker unparks us.
        let mut spins = 0u32;
        while self.shared.remaining.load(Ordering::Acquire) != 0 {
            if spins < SPIN_LIMIT {
                spins += 1;
                std::hint::spin_loop();
            } else {
                std::thread::park();
            }
        }
        if let Some(payload) = self.shared.panic.lock().expect("panic slot").take() {
            std::panic::resume_unwind(payload);
        }
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        self.shared.shutdown.store(true, Ordering::Relaxed);
        self.shared.epoch.fetch_add(1, Ordering::Release);
        for w in &self.workers {
            w.unpark();
        }
        for handle in self.handles.drain(..) {
            // A worker that panicked outside catch_unwind already aborted
            // the process; a join error here cannot carry new information.
            let _ = handle.join();
        }
    }
}

fn worker_loop(shared: &Shared, shard: usize) {
    let mut seen = 0usize;
    loop {
        // Wait for a new epoch: spin briefly, then park.
        let mut spins = 0u32;
        let epoch = loop {
            let e = shared.epoch.load(Ordering::Acquire);
            if e != seen {
                break e;
            }
            if spins < SPIN_LIMIT {
                spins += 1;
                std::hint::spin_loop();
            } else {
                std::thread::park();
            }
        };
        seen = epoch;
        if shared.shutdown.load(Ordering::Relaxed) {
            return;
        }
        // SAFETY: the coordinator published the job before this epoch and
        // keeps the underlying borrows alive until `remaining` hits 0.
        let job = unsafe { (*shared.job.get()).expect("epoch bump publishes a job") };
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            // SAFETY: disjoint shard ranges; this shard is ours alone.
            unsafe { exec_shard(&job, shard) };
        }));
        if let Err(payload) = result {
            shared.panic.lock().expect("panic slot").get_or_insert(payload);
        }
        if shared.remaining.fetch_sub(1, Ordering::Release) == 1 {
            shared.coordinator.unpark();
        }
    }
}

/// Processes shard `s` of the published job. Caller guarantees exclusive
/// access to the shard's node range, its physics batch, and slot `s` of
/// `outs` / `scratch` (plus the shard's rows of `heat`).
///
/// The pass bodies are the shared `crate::sim` functions the serial loop
/// runs — same code over the shard's slice, so the two paths cannot drift.
unsafe fn exec_shard(job: &Job, s: usize) {
    let range = shard_range(job.len, job.shards, s);
    let nodes = std::slice::from_raw_parts_mut(job.nodes.add(range.start), range.len());
    let batch = &mut *job.batches.add(s);
    let out = &mut *job.outs.add(s);
    *out = ShardOut { unfinished_parked: true, any_parked: false, finished_delta: 0 };
    let journal = (!job.scratch.is_null())
        .then(|| &mut *job.scratch.add(s) as &mut (dyn EventSink + 'static));

    match job.kind {
        PassKind::Workload { dt_s } => {
            crate::sim::workload_pass(nodes, batch, dt_s, out);
        }
        PassKind::Hardware { dt_s, now_s, release, couple_rack, finite } => {
            let heat = couple_rack
                .then(|| std::slice::from_raw_parts_mut(job.heat.add(range.start), range.len()));
            crate::sim::hardware_pass(
                nodes, batch, dt_s, now_s, release, finite, heat, journal, out,
            );
        }
        PassKind::Sample { now_s } => {
            crate::sim::sample_pass(nodes, batch, now_s, journal);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shard_ranges_cover_and_are_disjoint() {
        for len in [1usize, 2, 5, 7, 13, 64] {
            for shards in [1usize, 2, 3, 4, 7, 8] {
                let mut covered = 0;
                let mut prev_end = 0;
                for s in 0..shards {
                    let r = shard_range(len, shards, s);
                    assert_eq!(r.start, prev_end, "contiguous at len={len} shards={shards}");
                    prev_end = r.end;
                    covered += r.len();
                }
                assert_eq!(prev_end, len);
                assert_eq!(covered, len);
            }
        }
    }

    #[test]
    fn shard_sizes_balanced_within_one() {
        for len in [5usize, 13, 64] {
            for shards in [2usize, 3, 4, 7] {
                let sizes: Vec<usize> =
                    (0..shards).map(|s| shard_range(len, shards, s).len()).collect();
                let min = *sizes.iter().min().unwrap();
                let max = *sizes.iter().max().unwrap();
                assert!(max - min <= 1, "unbalanced {sizes:?} at len={len} shards={shards}");
            }
        }
    }
}
