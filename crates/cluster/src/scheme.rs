//! Control-scheme configuration: which fan policy and which DVFS policy a
//! node runs.
//!
//! These enums name exactly the arms the paper's experiments compare:
//! traditional (chip-automatic) fan control, constant-speed fan, the dynamic
//! history-based fan controller, tDVFS, and CPUSPEED.

use unitherm_core::actuator::FanDuty;
use unitherm_core::baseline::StaticFanCurve;
use unitherm_core::control_array::Policy;
use unitherm_core::controller::ControllerConfig;
use unitherm_core::governor::CpuSpeedConfig;
use unitherm_core::tdvfs::TdvfsConfig;

/// Fan-side control scheme.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub enum FanScheme {
    /// Leave the ADT7467 in automatic mode — the paper's "traditional
    /// static method" — optionally capping the duty in hardware.
    ChipAutomatic {
        /// Maximum allowed duty, percent.
        max_duty: FanDuty,
    },
    /// The same static curve, but run as a software daemon through the
    /// manual-mode driver (useful for ablations; behaves like
    /// `ChipAutomatic` up to sensor noise).
    SoftwareStatic {
        /// The curve to apply.
        curve: StaticFanCurve,
    },
    /// Constant-speed control (Figure 6's third arm).
    Constant {
        /// The pinned duty, percent.
        duty: FanDuty,
    },
    /// The paper's dynamic, history-based fan controller.
    Dynamic {
        /// Aggressiveness policy `P_p`.
        policy: Policy,
        /// Maximum allowed duty, percent (Figure 7's knob).
        max_duty: FanDuty,
        /// Controller tuning.
        config: ControllerConfig,
    },
    /// The dynamic controller augmented with utilization feedforward —
    /// the paper's §5 future work (hardware-counter-assisted prediction).
    DynamicFeedforward {
        /// Aggressiveness policy `P_p`.
        policy: Policy,
        /// Maximum allowed duty, percent.
        max_duty: FanDuty,
        /// Reactive-controller tuning.
        config: ControllerConfig,
        /// Feedforward-predictor tuning.
        feedforward: unitherm_core::feedforward::FeedforwardConfig,
    },
}

impl FanScheme {
    /// The paper's default dynamic scheme: `P_p = 50`, uncapped.
    pub fn dynamic(policy: Policy, max_duty: FanDuty) -> Self {
        FanScheme::Dynamic { policy, max_duty, config: ControllerConfig::default() }
    }

    /// The feedforward-augmented dynamic scheme with default tuning.
    pub fn dynamic_feedforward(policy: Policy, max_duty: FanDuty) -> Self {
        FanScheme::DynamicFeedforward {
            policy,
            max_duty,
            config: ControllerConfig::default(),
            feedforward: unitherm_core::feedforward::FeedforwardConfig::default(),
        }
    }

    /// Short label for reports.
    pub fn label(&self) -> String {
        match self {
            FanScheme::ChipAutomatic { max_duty } => format!("traditional(max={max_duty}%)"),
            FanScheme::SoftwareStatic { curve } => {
                format!("static-sw(max={}%)", curve.pwm_max)
            }
            FanScheme::Constant { duty } => format!("constant({duty}%)"),
            FanScheme::Dynamic { policy, max_duty, .. } => {
                format!("dynamic(P_p={}, max={max_duty}%)", policy.value())
            }
            FanScheme::DynamicFeedforward { policy, max_duty, .. } => {
                format!("dynamic+ff(P_p={}, max={max_duty}%)", policy.value())
            }
        }
    }
}

/// DVFS-side control scheme.
#[derive(Debug, Clone, Default, PartialEq, serde::Serialize, serde::Deserialize)]
pub enum DvfsScheme {
    /// No frequency scaling: always the highest P-state.
    #[default]
    None,
    /// The paper's temperature-aware tDVFS daemon.
    Tdvfs {
        /// Aggressiveness policy `P_p`.
        policy: Policy,
        /// Daemon tuning (threshold, confirmation rounds).
        config: TdvfsConfig,
    },
    /// The CPUSPEED utilization governor (baseline).
    CpuSpeed {
        /// Governor tuning.
        config: CpuSpeedConfig,
    },
}

impl DvfsScheme {
    /// tDVFS with default tuning (51 °C threshold).
    pub fn tdvfs(policy: Policy) -> Self {
        DvfsScheme::Tdvfs { policy, config: TdvfsConfig::default() }
    }

    /// CPUSPEED with default tuning.
    pub fn cpuspeed() -> Self {
        DvfsScheme::CpuSpeed { config: CpuSpeedConfig::default() }
    }

    /// Short label for reports.
    pub fn label(&self) -> String {
        match self {
            DvfsScheme::None => "no-dvfs".to_string(),
            DvfsScheme::Tdvfs { policy, config } => {
                format!("tDVFS(P_p={}, T={}°C)", policy.value(), config.threshold_c)
            }
            DvfsScheme::CpuSpeed { .. } => "CPUSPEED".to_string(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_are_descriptive() {
        assert_eq!(FanScheme::ChipAutomatic { max_duty: 75 }.label(), "traditional(max=75%)");
        assert_eq!(FanScheme::Constant { duty: 75 }.label(), "constant(75%)");
        assert_eq!(
            FanScheme::dynamic(Policy::MODERATE, 25).label(),
            "dynamic(P_p=50, max=25%)"
        );
        assert_eq!(DvfsScheme::None.label(), "no-dvfs");
        assert!(DvfsScheme::tdvfs(Policy::MODERATE).label().contains("51"));
        assert_eq!(DvfsScheme::cpuspeed().label(), "CPUSPEED");
    }

    #[test]
    fn software_static_label() {
        let s = FanScheme::SoftwareStatic { curve: StaticFanCurve::with_max(75) };
        assert_eq!(s.label(), "static-sw(max=75%)");
    }
}
