//! Control-scheme configuration, re-exported from the core control plane.
//!
//! The scheme vocabulary ([`FanScheme`], [`DvfsScheme`], [`SchemeSpec`])
//! now lives in `unitherm_core::control_plane` so that the hwmon stack and
//! the cluster simulator share one `SchemeSpec::build()` factory — the
//! single place a scheme description becomes a daemon pipeline. This module
//! remains as a compatibility path for cluster users.

pub use unitherm_core::control_plane::{
    BuildContext, DvfsScheme, FanBinding, FanScheme, SchemeSpec,
};
