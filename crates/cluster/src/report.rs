//! Structured run results.
//!
//! A [`RunReport`] carries both the raw traces (for regenerating the paper's
//! figures) and the summary numbers its tables report: execution time,
//! average wall power, frequency-transition counts and the power-delay
//! product.

use unitherm_core::actuator::FreqMhz;
use unitherm_metrics::stats::power_delay_product;
use unitherm_metrics::{Summary, TimeSeries};
use unitherm_obs::{Counters, EventRecord};
use unitherm_simnode::faults::FaultEvent;

/// Results for one node.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct NodeReport {
    /// Sensor temperature trace (°C).
    pub temp: TimeSeries,
    /// Commanded fan duty trace (%).
    pub duty: TimeSeries,
    /// Requested CPU frequency trace (MHz).
    pub freq: TimeSeries,
    /// Instantaneous wall power trace (W).
    pub power: TimeSeries,
    /// CPU utilization trace.
    pub util: TimeSeries,
    /// Frequency-change events `(time, new MHz)` issued by the daemons.
    pub freq_events: Vec<(f64, FreqMhz)>,
    /// Hardware frequency transitions actually performed.
    pub freq_transitions: u64,
    /// Hardware thermal-throttle engagements.
    pub throttle_events: u64,
    /// Failsafe-watchdog engagements (0 when no failsafe attached).
    pub failsafe_engagements: u64,
    /// True if the node crossed the shutdown threshold.
    pub shut_down: bool,
    /// Average wall power over the whole run (exact, from the meter), W.
    pub avg_wall_power_w: f64,
    /// Total wall energy, J.
    pub energy_j: f64,
    /// Temperature summary over all sensor samples.
    pub temp_summary: Summary,
    /// Commanded-duty summary over all samples.
    pub duty_summary: Summary,
    /// When this rank's workload finished, if it did.
    pub finish_time_s: Option<f64>,
    /// Monotonic control-plane counters (`serde(default)` so reports from
    /// before the observability layer still parse).
    #[serde(default)]
    pub counters: Counters,
    /// Events overwritten out of the node's fixed-capacity ring (the ring
    /// keeps only the most recent `event_capacity` records).
    #[serde(default)]
    pub events_dropped: u64,
    /// The most recent control-plane events, drained from the node's ring
    /// in emission order.
    #[serde(default)]
    pub events: Vec<EventRecord>,
    /// Faults delivered to this node's hardware, `(tick, fault)` in
    /// delivery order — both stochastic (`FaultPlan`) and tick-addressed
    /// replay (`TickFaultSchedule`) deliveries appear here.
    #[serde(default)]
    pub faults_applied: Vec<(u64, FaultEvent)>,
}

/// Results for one scenario run.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct RunReport {
    /// Scenario name.
    pub name: String,
    /// Fan scheme label.
    pub fan_label: String,
    /// DVFS scheme label.
    pub dvfs_label: String,
    /// Workload label.
    pub workload_label: String,
    /// Per-node results.
    pub nodes: Vec<NodeReport>,
    /// Simulated wall time actually elapsed, seconds.
    pub wall_time_s: f64,
    /// True when every rank finished before the time limit.
    pub completed: bool,
    /// Job execution time: the time the last rank finished, or the wall
    /// time for unbounded / unfinished runs.
    pub exec_time_s: f64,
    /// Rack intake-air trace when rack coupling was enabled.
    pub rack_air: Option<TimeSeries>,
    /// Set when an attached journal sink latched an I/O error mid-run: the
    /// journal on disk is incomplete even though the simulation finished.
    /// `None` when no journal was attached or it wrote cleanly.
    #[serde(default)]
    pub journal_warning: Option<String>,
}

/// Mean of the finite values in `values`, or 0.0 when none are finite.
///
/// Faulted runs (sensor dropout, jitter) can leave NaN or ±inf in per-node
/// summaries; one poisoned node must not turn every cluster aggregate into
/// NaN, so non-finite contributions are skipped rather than propagated.
fn finite_mean(values: impl Iterator<Item = f64>) -> f64 {
    let (mut sum, mut n) = (0.0, 0u64);
    for v in values.filter(|v| v.is_finite()) {
        sum += v;
        n += 1;
    }
    if n == 0 {
        0.0
    } else {
        sum / n as f64
    }
}

impl RunReport {
    /// Average per-node wall power across the cluster, W. Non-finite
    /// per-node values (faulted runs) are skipped.
    pub fn avg_node_power_w(&self) -> f64 {
        finite_mean(self.nodes.iter().map(|n| n.avg_wall_power_w))
    }

    /// Mean of per-node average temperatures, °C. Non-finite per-node means
    /// (empty or NaN-poisoned summaries) are skipped.
    pub fn avg_temp_c(&self) -> f64 {
        finite_mean(self.nodes.iter().map(|n| n.temp_summary.mean))
    }

    /// Hottest temperature seen on any node, °C. NaN maxima are ignored;
    /// returns `-inf` when no node recorded a sample (the empty-summary
    /// sentinel).
    pub fn max_temp_c(&self) -> f64 {
        // f64::max is NaN-ignoring as long as the accumulator stays non-NaN,
        // which the NEG_INFINITY seed guarantees.
        self.nodes.iter().map(|n| n.temp_summary.max).fold(f64::NEG_INFINITY, f64::max)
    }

    /// Mean of per-node average commanded duty, %. Non-finite per-node
    /// means are skipped.
    pub fn avg_duty_pct(&self) -> f64 {
        finite_mean(self.nodes.iter().map(|n| n.duty_summary.mean))
    }

    /// Total hardware frequency transitions across the cluster (Table 1's
    /// "# freq changes").
    pub fn total_freq_transitions(&self) -> u64 {
        self.nodes.iter().map(|n| n.freq_transitions).sum()
    }

    /// Total thermal-throttle engagements across the cluster.
    pub fn total_throttle_events(&self) -> u64 {
        self.nodes.iter().map(|n| n.throttle_events).sum()
    }

    /// True if any node shut down.
    pub fn any_shutdown(&self) -> bool {
        self.nodes.iter().any(|n| n.shut_down)
    }

    /// The paper's power-delay product: average per-node power × execution
    /// time (Table 1).
    pub fn power_delay_product(&self) -> f64 {
        power_delay_product(self.avg_node_power_w(), self.exec_time_s)
    }

    /// Earliest DVFS scale-down event across the cluster (Figure 10's
    /// trigger time), if any. Events with non-finite timestamps (possible
    /// in reports assembled from faulted or corrupt inputs) are skipped.
    pub fn first_dvfs_event_time_s(&self) -> Option<f64> {
        self.nodes
            .iter()
            .filter_map(|n| n.freq_events.first().map(|(t, _)| *t))
            .filter(|t| t.is_finite())
            .min_by(f64::total_cmp)
    }

    /// Lowest frequency any node was ever commanded to, MHz.
    pub fn min_commanded_freq_mhz(&self) -> Option<FreqMhz> {
        self.nodes.iter().flat_map(|n| n.freq_events.iter().map(|&(_, f)| f)).min()
    }

    /// Cluster-wide counter totals (field-by-field sum over the nodes).
    pub fn counters_total(&self) -> Counters {
        let mut total = Counters::default();
        for n in &self.nodes {
            total.merge(&n.counters);
        }
        total
    }

    /// The cluster counter totals in the Prometheus text exposition format,
    /// tagged with the scenario name.
    pub fn prometheus_text(&self) -> String {
        let label = format!("scenario=\"{}\"", self.name);
        unitherm_obs::prometheus_text(&self.counters_total(), &label)
    }

    /// One-line summary, used by the `repro` binary.
    pub fn summary_line(&self) -> String {
        format!(
            "{}: fan={} dvfs={} wl={} | exec={:.1}s avgP={:.2}W avgT={:.2}°C maxT={:.2}°C duty={:.1}% freqChg={} PDP={:.0}",
            self.name,
            self.fan_label,
            self.dvfs_label,
            self.workload_label,
            self.exec_time_s,
            self.avg_node_power_w(),
            self.avg_temp_c(),
            self.max_temp_c(),
            self.avg_duty_pct(),
            self.total_freq_transitions(),
            self.power_delay_product(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use unitherm_metrics::Summary;

    fn node_report(power: f64, temp_mean: f64, transitions: u64) -> NodeReport {
        NodeReport {
            temp: TimeSeries::new("t", "°C"),
            duty: TimeSeries::new("d", "%"),
            freq: TimeSeries::new("f", "MHz"),
            power: TimeSeries::new("p", "W"),
            util: TimeSeries::new("u", ""),
            freq_events: vec![(10.0, 2200), (20.0, 2000)],
            freq_transitions: transitions,
            throttle_events: 0,
            failsafe_engagements: 0,
            shut_down: false,
            avg_wall_power_w: power,
            energy_j: power * 100.0,
            temp_summary: Summary {
                count: 10,
                mean: temp_mean,
                min: temp_mean - 5.0,
                max: temp_mean + 5.0,
                std_dev: 1.0,
            },
            duty_summary: Summary { count: 10, mean: 50.0, min: 10.0, max: 90.0, std_dev: 5.0 },
            finish_time_s: Some(100.0),
            counters: Counters { samples: 400, l2_fallbacks: 3, ..Counters::default() },
            events_dropped: 0,
            events: vec![EventRecord {
                time_s: 10.0,
                node: 0,
                event: unitherm_obs::Event::TdvfsEngage { from_mhz: 2400, to_mhz: 2200 },
            }],
            faults_applied: vec![(200, FaultEvent::FanFailure)],
        }
    }

    fn report() -> RunReport {
        RunReport {
            name: "test".into(),
            fan_label: "dynamic".into(),
            dvfs_label: "tDVFS".into(),
            workload_label: "BT.B".into(),
            nodes: vec![node_report(100.0, 50.0, 2), node_report(96.0, 54.0, 4)],
            wall_time_s: 100.0,
            completed: true,
            exec_time_s: 100.0,
            rack_air: None,
            journal_warning: None,
        }
    }

    #[test]
    fn aggregates() {
        let r = report();
        assert_eq!(r.avg_node_power_w(), 98.0);
        assert_eq!(r.avg_temp_c(), 52.0);
        assert_eq!(r.max_temp_c(), 59.0);
        assert_eq!(r.total_freq_transitions(), 6);
        assert_eq!(r.power_delay_product(), 9800.0);
        assert_eq!(r.avg_duty_pct(), 50.0);
        assert!(!r.any_shutdown());
    }

    #[test]
    fn dvfs_event_queries() {
        let r = report();
        assert_eq!(r.first_dvfs_event_time_s(), Some(10.0));
        assert_eq!(r.min_commanded_freq_mhz(), Some(2000));
    }

    #[test]
    fn counter_totals_and_prometheus_export() {
        let r = report();
        let total = r.counters_total();
        assert_eq!(total.samples, 800, "two nodes at 400 samples each");
        assert_eq!(total.l2_fallbacks, 6);
        let text = r.prometheus_text();
        assert!(text.contains("unitherm_samples_total{scenario=\"test\"} 800"), "{text}");
    }

    #[test]
    fn empty_report_is_safe() {
        let r = RunReport {
            name: "empty".into(),
            fan_label: String::new(),
            dvfs_label: String::new(),
            workload_label: String::new(),
            nodes: vec![],
            wall_time_s: 0.0,
            completed: false,
            exec_time_s: 0.0,
            rack_air: None,
            journal_warning: None,
        };
        assert_eq!(r.avg_node_power_w(), 0.0);
        assert_eq!(r.avg_temp_c(), 0.0);
        assert_eq!(r.first_dvfs_event_time_s(), None);
        assert_eq!(r.min_commanded_freq_mhz(), None);
    }

    #[test]
    fn nan_sample_times_and_values_do_not_panic_aggregation() {
        // Regression: `first_dvfs_event_time_s` used
        // `partial_cmp(..).expect("times are finite")` and panicked the
        // moment a NaN timestamp reached a report; NaN summary means also
        // poisoned every cluster average.
        let mut r = report();
        r.nodes[0].freq_events = vec![(f64::NAN, 2200)];
        r.nodes[0].temp_summary.mean = f64::NAN;
        r.nodes[0].temp_summary.max = f64::NAN;
        r.nodes[0].duty_summary.mean = f64::NAN;
        r.nodes[0].avg_wall_power_w = f64::NAN;
        // The NaN-timestamped event is skipped; node 1's finite event wins.
        assert_eq!(r.first_dvfs_event_time_s(), Some(10.0));
        // Node 0's poisoned summaries are skipped, node 1 still counts.
        assert_eq!(r.avg_temp_c(), 54.0);
        assert_eq!(r.avg_duty_pct(), 50.0);
        assert_eq!(r.avg_node_power_w(), 96.0);
        assert_eq!(r.max_temp_c(), 59.0);
        let line = r.summary_line();
        assert!(!line.contains("NaN"), "NaN leaked into summary line: {line}");
    }

    #[test]
    fn all_nan_events_yield_none_and_zeroed_aggregates() {
        let mut r = report();
        for n in &mut r.nodes {
            n.freq_events = vec![(f64::NAN, 2000)];
            n.temp_summary.mean = f64::NAN;
            n.avg_wall_power_w = f64::INFINITY;
        }
        assert_eq!(r.first_dvfs_event_time_s(), None);
        assert_eq!(r.avg_temp_c(), 0.0);
        assert_eq!(r.avg_node_power_w(), 0.0);
    }

    #[test]
    fn summary_line_contains_key_numbers() {
        let line = report().summary_line();
        assert!(line.contains("exec=100.0s"));
        assert!(line.contains("freqChg=6"));
        assert!(line.contains("BT.B"));
    }

    #[test]
    fn report_round_trips_through_json() {
        let r = report();
        let json = serde_json::to_string(&r).expect("serialize");
        let back: RunReport = serde_json::from_str(&json).expect("deserialize");
        assert_eq!(back.name, r.name);
        assert_eq!(back.nodes.len(), r.nodes.len());
        assert_eq!(back.nodes[0].freq_events, r.nodes[0].freq_events);
        assert_eq!(back.nodes[1].temp_summary, r.nodes[1].temp_summary);
        assert_eq!(back.exec_time_s, r.exec_time_s);
        assert_eq!(back.completed, r.completed);
    }

    #[test]
    fn zero_sample_summaries_round_trip_without_corrupting_json() {
        // A `record_series: false` (or 0-duration) run produces empty
        // summaries holding ±inf sentinels. Those must not leak into the
        // JSON as `null` — the report must parse back to the same state.
        let mut r = report();
        r.nodes[0].temp_summary = Summary::default();
        r.nodes[0].duty_summary = Summary::default();
        // `rack_air: None` and `journal_warning: None` legitimately
        // serialize as `null`; pin them to values so the no-null assertion
        // isolates the Summary encoding.
        r.rack_air = Some(TimeSeries::new("rack", "°C"));
        r.journal_warning = Some("journal sink failed: disk full".to_string());
        let json = serde_json::to_string_pretty(&r).expect("serialize");
        assert!(!json.contains("null"), "±inf sentinel leaked as null:\n{json}");
        let back: RunReport = serde_json::from_str(&json).expect("reparse");
        assert_eq!(back.nodes[0].temp_summary, Summary::default());
        assert_eq!(back.nodes[0].temp_summary.count, 0);
        assert_eq!(back.nodes[0].temp_summary.min, f64::INFINITY);
        assert_eq!(back.nodes[0].temp_summary.max, f64::NEG_INFINITY);
        // Non-empty summaries are untouched by the empty-sentinel encoding.
        assert_eq!(back.nodes[1].temp_summary, r.nodes[1].temp_summary);
    }
}
