//! The paper's prose claims, pinned as tests.
//!
//! Each test quotes a sentence from Li/Ge/Cameron (ICPP 2010) and verifies
//! the reproduced system exhibits the claimed behaviour. These complement
//! the figure/table shape checks in `tests/experiment_shapes.rs`: shapes
//! validate the evaluation, these validate the narrative.

use unitherm::cluster::{DvfsScheme, FanScheme, Scenario, Simulation, WorkloadSpec};
use unitherm::core::classify::{BehaviorClassifier, ThermalBehavior};
use unitherm::core::control_array::Policy;
use unitherm::core::fan_control::DynamicFanController;
use unitherm::core::tdvfs::Tdvfs;
use unitherm::workload::{NpbBenchmark, NpbClass};

const LADDER: [u32; 5] = [2400, 2200, 2000, 1800, 1000];

/// §1: "scaling down DVFS processor frequency cubically reduces power
/// consumption" — dynamic power scales as V²f, which over a ladder where
/// voltage falls with frequency is super-linear (the cubic f·V(f)² law).
#[test]
fn claim_dvfs_reduces_power_superlinearly() {
    use unitherm::simnode::config::CpuConfig;
    use unitherm::simnode::cpu::Cpu;
    let mut cpu = Cpu::new(CpuConfig::default());
    cpu.set_utilization(1.0);
    let static_w = {
        // Isolate dynamic power by subtracting the zero-utilization draw.
        let mut idle = Cpu::new(CpuConfig::default());
        idle.set_utilization(0.0);
        move |c: &mut Cpu, mhz: u32| {
            c.set_frequency_mhz(mhz).unwrap();
            idle.set_frequency_mhz(mhz).unwrap();
            c.power_w(50.0) - idle.power_w(50.0)
        }
    };
    let mut dyn_at = static_w;
    let p_top = dyn_at(&mut cpu, 2400);
    let p_bottom = dyn_at(&mut cpu, 1000);
    let freq_ratio = 2400.0 / 1000.0;
    let power_ratio = p_top / p_bottom;
    assert!(
        power_ratio > freq_ratio * 1.5,
        "dynamic power falls super-linearly: {power_ratio:.2}× power for {freq_ratio:.2}× frequency"
    );
}

/// §1: "Out-of-band techniques cool down hot spots without impacting system
/// computational capacity and application performance."
#[test]
fn claim_fan_control_costs_no_performance() {
    let run = |fan: FanScheme| {
        Simulation::new(
            Scenario::new("fan-perf")
                .with_nodes(4)
                .with_seed(31)
                .with_workload(WorkloadSpec::Npb { bench: NpbBenchmark::Bt, class: NpbClass::B })
                .with_fan(fan)
                .with_max_time(600.0)
                .with_recording(false),
        )
        .run()
    };
    let weak = run(FanScheme::Constant { duty: 30 });
    let strong = run(FanScheme::Constant { duty: 100 });
    // Identical execution times (to the tick) despite very different
    // thermal outcomes: the fan is outside the critical path.
    assert!(
        (weak.exec_time_s - strong.exec_time_s).abs() < 0.5,
        "fan speed must not affect execution time: {:.1} vs {:.1}",
        weak.exec_time_s,
        strong.exec_time_s
    );
    assert!(weak.avg_temp_c() > strong.avg_temp_c() + 3.0, "but it does affect temperature");
}

/// §1: "relying on cooling fan solely may fail to cool down the hot spots"
/// — a capped fan alone cannot keep BT under the emergency-free envelope
/// that the hybrid controller maintains.
#[test]
fn claim_fan_alone_is_not_enough() {
    let run = |dvfs: DvfsScheme| {
        Simulation::new(
            Scenario::new("fan-alone")
                .with_nodes(1)
                .with_seed(32)
                .with_workload(WorkloadSpec::CpuBurnTuned(unitherm::workload::burn::BurnConfig {
                    burst_s: (200.0, 250.0),
                    gap_s: (4.0, 6.0),
                    ..Default::default()
                }))
                .with_fan(FanScheme::dynamic(Policy::MODERATE, 15))
                .with_dvfs(dvfs)
                .with_max_time(600.0)
                .with_recording(false),
        )
        .run()
    };
    let fan_only = run(DvfsScheme::None);
    let hybrid = run(DvfsScheme::tdvfs(Policy::MODERATE));
    assert!(
        fan_only.total_throttle_events() > 0,
        "a 15 %-capped fan alone must fail under sustained burn"
    );
    assert_eq!(hybrid.total_throttle_events(), 0, "the in-band backup prevents the emergency");
}

/// §3.1: "Our temperature controller recognizes these types of workload
/// phases … It is also intelligent not to respond to periods of jitter."
#[test]
fn claim_controller_ignores_jitter_but_not_changes() {
    let mut fan = DynamicFanController::with_defaults(Policy::MODERATE, 100);
    // Pure jitter for 100 rounds: no response.
    for i in 0..400 {
        let t = 45.0 + if i % 2 == 0 { 0.3 } else { -0.3 };
        assert!(fan.observe(t).is_none(), "sample {i}");
    }
    assert_eq!(fan.current_duty(), 1);
    // A genuine sudden change: immediate response.
    fan.observe(45.0);
    fan.observe(45.0);
    fan.observe(50.0);
    assert!(fan.observe(50.0).is_some(), "sudden change must be acted on");
}

/// §3.1 taxonomy: the classifier distinguishes all three behaviour types
/// the controller is built around.
#[test]
fn claim_three_behaviour_types_are_distinguishable() {
    let sudden = {
        let mut t = vec![45.0; 6];
        t.extend(vec![51.0; 10]);
        BehaviorClassifier::classify_trace(t)
    };
    assert!(sudden.contains(&ThermalBehavior::Sudden));

    let gradual = BehaviorClassifier::classify_trace((0..60).map(|i| 40.0 + 0.08 * f64::from(i)));
    assert!(gradual.contains(&ThermalBehavior::Gradual));
    assert!(!gradual.contains(&ThermalBehavior::Sudden));

    let jitter = BehaviorClassifier::classify_trace(
        (0..40).map(|i| 45.0 + if i % 2 == 0 { 0.5 } else { -0.5 }),
    );
    assert!(jitter.iter().all(|&l| l == ThermalBehavior::Jitter));
}

/// §3.2.2: "Controls using larger P_p tend to be cost-oriented, while ones
/// using smaller P_p tend to be temperature-oriented."
#[test]
fn claim_pp_is_a_temperature_vs_cost_knob() {
    let run = |pp: u32| {
        Simulation::new(
            Scenario::new("pp-knob")
                .with_nodes(1)
                .with_seed(33)
                .with_workload(WorkloadSpec::Npb { bench: NpbBenchmark::Bt, class: NpbClass::B })
                .with_fan(FanScheme::dynamic(Policy::new(pp).unwrap(), 100))
                .with_max_time(600.0)
                .with_recording(false),
        )
        .run()
    };
    let temp_oriented = run(10);
    let cost_oriented = run(90);
    assert!(
        temp_oriented.avg_temp_c() < cost_oriented.avg_temp_c(),
        "small P_p runs cooler: {:.2} vs {:.2}",
        temp_oriented.avg_temp_c(),
        cost_oriented.avg_temp_c()
    );
    assert!(
        temp_oriented.avg_duty_pct() > cost_oriented.avg_duty_pct(),
        "…by spending more fan: {:.1}% vs {:.1}%",
        temp_oriented.avg_duty_pct(),
        cost_oriented.avg_duty_pct()
    );
}

/// §4.3: "tDVFS has significantly reduced the number of frequency changes
/// …, which is greatly beneficial to the system reliability."
#[test]
fn claim_tdvfs_makes_orders_of_magnitude_fewer_transitions() {
    let run = |dvfs: DvfsScheme| {
        Simulation::new(
            Scenario::new("transitions")
                .with_nodes(4)
                .with_seed(34)
                .with_workload(WorkloadSpec::Npb { bench: NpbBenchmark::Bt, class: NpbClass::B })
                .with_fan(FanScheme::dynamic(Policy::MODERATE, 50))
                .with_dvfs(dvfs)
                .with_max_time(600.0)
                .with_recording(false),
        )
        .run()
    };
    let cpuspeed = run(DvfsScheme::cpuspeed());
    let tdvfs = run(DvfsScheme::tdvfs(Policy::MODERATE));
    assert!(
        tdvfs.total_freq_transitions() * 10 <= cpuspeed.total_freq_transitions(),
        "tDVFS {} vs CPUSPEED {}",
        tdvfs.total_freq_transitions(),
        cpuspeed.total_freq_transitions()
    );
}

/// §4.3 (Figure 8): "tDVFS algorithm scales up frequency to its original
/// value once the temperature is consistently below the threshold so as to
/// avoid performance loss."
#[test]
fn claim_tdvfs_restores_the_original_frequency() {
    let mut d = Tdvfs::with_defaults(&LADDER, Policy::MODERATE);
    for _ in 0..160 {
        let _ = d.observe(58.0); // hot: scales down
    }
    assert!(d.current_frequency_mhz() < 2400);
    let mut restored = None;
    for _ in 0..80 {
        restored = d.observe(45.0).or(restored); // cool: restores
    }
    assert_eq!(
        restored.map(|e| e.frequency_mhz()),
        Some(2400),
        "direct jump back to the original frequency"
    );
}

/// §5: "using a less powerful fan can achieve the same thermal efficiency
/// as a more powerful fan if we carefully design our fan controller
/// methods" — under dynamic control the 50 % and 75 % caps land within ~3 °C
/// of each other while the 25 % cap is far behind.
#[test]
fn claim_weaker_fan_matches_stronger_under_proactive_control() {
    let run = |cap: u8| {
        Simulation::new(
            Scenario::new("caps")
                .with_nodes(1)
                .with_seed(35)
                .with_workload(WorkloadSpec::Npb { bench: NpbBenchmark::Bt, class: NpbClass::B })
                .with_fan(FanScheme::dynamic(Policy::MODERATE, cap))
                .with_max_time(600.0)
                .with_recording(false),
        )
        .run()
    };
    let t25 = run(25).avg_temp_c();
    let t50 = run(50).avg_temp_c();
    let t75 = run(75).avg_temp_c();
    assert!(
        t50 - t75 < t25 - t50,
        "50 vs 75 gap ({:.1}) smaller than 25 vs 50 gap ({:.1})",
        t50 - t75,
        t25 - t50
    );
}
