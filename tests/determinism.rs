//! Reproducibility guarantees: identical seeds produce bit-identical runs
//! across the whole stack, different seeds genuinely differ, and parallel
//! sweep execution cannot change results.

use unitherm::cluster::{
    run_scenarios_parallel, DvfsScheme, FanScheme, Scenario, Simulation, WorkloadSpec,
};
use unitherm::core::control_array::Policy;
use unitherm::workload::{NpbBenchmark, NpbClass};

fn scenario(seed: u64) -> Scenario {
    Scenario::new("det")
        .with_nodes(4)
        .with_seed(seed)
        .with_workload(WorkloadSpec::Npb { bench: NpbBenchmark::Bt, class: NpbClass::B })
        .with_fan(FanScheme::dynamic(Policy::MODERATE, 50))
        .with_dvfs(DvfsScheme::tdvfs(Policy::MODERATE))
        .with_max_time(600.0)
}

#[test]
fn identical_seeds_are_bit_identical() {
    let a = Simulation::new(scenario(42)).run();
    let b = Simulation::new(scenario(42)).run();
    assert_eq!(a.exec_time_s, b.exec_time_s);
    assert_eq!(a.avg_node_power_w(), b.avg_node_power_w());
    assert_eq!(a.total_freq_transitions(), b.total_freq_transitions());
    for (na, nb) in a.nodes.iter().zip(&b.nodes) {
        assert_eq!(na.temp.samples(), nb.temp.samples());
        assert_eq!(na.duty.samples(), nb.duty.samples());
        assert_eq!(na.freq_events, nb.freq_events);
    }
}

#[test]
fn different_seeds_differ() {
    let a = Simulation::new(scenario(1)).run();
    let b = Simulation::new(scenario(2)).run();
    // Sensor noise and rank wobble must actually differ.
    assert_ne!(
        a.nodes[0].temp.samples(),
        b.nodes[0].temp.samples(),
        "different seeds produced identical traces"
    );
}

#[test]
fn parallel_sweep_matches_serial_execution() {
    let serial: Vec<_> = vec![scenario(7), scenario(8), scenario(9)]
        .into_iter()
        .map(|s| Simulation::new(s).run())
        .collect();
    let parallel = run_scenarios_parallel(vec![scenario(7), scenario(8), scenario(9)], 3);
    for (s, p) in serial.iter().zip(&parallel) {
        assert_eq!(s.exec_time_s, p.exec_time_s);
        assert_eq!(s.avg_node_power_w(), p.avg_node_power_w());
        assert_eq!(s.nodes[0].temp.samples(), p.nodes[0].temp.samples());
    }
}

#[test]
fn recording_off_preserves_summaries() {
    // Disabling trace recording (benchmark mode) must not change any
    // physics or summary statistic.
    let with = Simulation::new(scenario(5)).run();
    let mut sc = scenario(5);
    sc.record_series = false;
    let without = Simulation::new(sc).run();
    assert_eq!(with.exec_time_s, without.exec_time_s);
    assert_eq!(with.avg_node_power_w(), without.avg_node_power_w());
    assert_eq!(with.avg_temp_c(), without.avg_temp_c());
    assert_eq!(with.total_freq_transitions(), without.total_freq_transitions());
    assert!(without.nodes[0].temp.is_empty(), "no traces in benchmark mode");
    assert_eq!(without.nodes[0].temp_summary.count, with.nodes[0].temp_summary.count);
}
