//! Property test pinning the structure-of-arrays contract: for any
//! scenario, `Simulation` must produce a bit-identical `RunReport` whether
//! the physics runs through the `PhysicsBatch` lanes or the scalar
//! per-node tick (`Scenario::force_scalar`), at any worker-pool width.
//!
//! The fixed-scenario thread-identity suite lives in `parallel_tick.rs`;
//! this file randomizes over the configuration space instead: fleet size,
//! seed, control scheme, workload (endless burn and the finite NPB path),
//! sample cadence, run length, and per-node fault plans (faulted nodes
//! drop to scalar passthrough, so mixed batch/scalar shards are exercised
//! too). Each case compares FNV digests of the complete reports — traces,
//! counters, events — across scalar 1-thread vs batched 1/2/4-thread runs.

use proptest::prelude::*;
use unitherm::cluster::{report_digest, DvfsScheme, FanScheme, Scenario, Simulation, WorkloadSpec};
use unitherm::core::control_array::Policy;
use unitherm::simnode::faults::{FaultEvent, FaultPlan};
use unitherm::workload::{NpbBenchmark, NpbClass};

/// One randomized scenario configuration.
#[derive(Debug, Clone)]
struct Case {
    nodes: usize,
    seed: u64,
    scheme: u8,
    workload: u8,
    sample_period_s: f64,
    max_time_s: f64,
    /// `(node, time, event)` triples; node is reduced modulo the fleet size.
    faults: Vec<(usize, f64, u8)>,
}

fn fault_event(code: u8) -> FaultEvent {
    match code % 5 {
        0 => FaultEvent::FanFailure,
        1 => FaultEvent::SensorDropout,
        2 => FaultEvent::I2cFailure,
        3 => FaultEvent::PwmStuck,
        _ => FaultEvent::AmbientStep(38.0),
    }
}

fn build(case: &Case) -> Scenario {
    let mut s = Scenario::new("scalar-batch-equivalence")
        .with_nodes(case.nodes)
        .with_seed(case.seed)
        .with_max_time(case.max_time_s)
        .with_recording(true);
    s.sample_period_s = case.sample_period_s;
    s = match case.workload % 2 {
        0 => s.with_workload(WorkloadSpec::CpuBurn),
        _ => s.with_workload(WorkloadSpec::Npb { bench: NpbBenchmark::Bt, class: NpbClass::A }),
    };
    s = match case.scheme % 4 {
        0 => s.with_fan(FanScheme::dynamic(Policy::MODERATE, 100)),
        1 => s.with_fan(FanScheme::ChipAutomatic { max_duty: 100 }),
        2 => s
            .with_fan(FanScheme::dynamic(Policy::AGGRESSIVE, 100))
            .with_dvfs(DvfsScheme::tdvfs(Policy::AGGRESSIVE)),
        _ => s
            .with_fan(FanScheme::Constant { duty: 60 })
            .with_dvfs(DvfsScheme::tdvfs(Policy::MODERATE)),
    };
    for &(node, time_s, code) in &case.faults {
        let node = node % case.nodes;
        s = s.with_fault(node, FaultPlan::none().at(time_s, fault_event(code)));
    }
    s
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn batch_report_matches_scalar_at_any_thread_count(
        nodes in 1usize..=6,
        seed in any::<u64>(),
        scheme in any::<u8>(),
        workload in any::<u8>(),
        sample_idx in 0usize..3,
        max_time_s in 8.0f64..30.0,
        faults in prop::collection::vec((0usize..6, 1.0f64..25.0, any::<u8>()), 0..=2),
    ) {
        let case = Case {
            nodes,
            seed,
            scheme,
            workload,
            sample_period_s: [0.25, 0.5, 1.0][sample_idx],
            max_time_s,
            faults,
        };
        let scalar = Simulation::new(build(&case).with_force_scalar(true)).run();
        let want = report_digest(&scalar);
        for threads in [1usize, 2, 4] {
            let batched =
                Simulation::new(build(&case).with_threads(threads)).run();
            prop_assert_eq!(
                &report_digest(&batched),
                &want,
                "batched run diverged from scalar at {} threads for {:?}",
                threads,
                case
            );
        }
    }
}
