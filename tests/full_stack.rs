//! Cross-crate integration: a userspace daemon written against the
//! string-based sysfs interface drives the full hardware stack.
//!
//! This is the most end-to-end path in the repository: temperature flows
//! die → sensor → hwmon string attribute → parsed by the "daemon" →
//! two-level window → control array → duty decision → sysfs write →
//! register encode → i2c transaction → ADT7467 → fan → airflow → thermal
//! model. No crate-internal shortcuts.

use unitherm::core::actuator::fan_mode_set;
use unitherm::core::control_array::Policy;
use unitherm::core::controller::{ControllerConfig, UnifiedController};
use unitherm::core::tdvfs::Tdvfs;
use unitherm::hwmon::SysfsTree;
use unitherm::simnode::units::DutyCycle;
use unitherm::simnode::{Node, NodeConfig};
use unitherm::workload::{CpuBurn, Workload};

/// A minimal userspace daemon: reads sysfs strings, writes sysfs strings.
struct SysfsDaemon {
    tree: SysfsTree,
    fan: UnifiedController<u8>,
    tdvfs: Tdvfs,
}

impl SysfsDaemon {
    fn new(node: &mut Node) -> Self {
        let mut tree = SysfsTree::new();
        // Take manual control of the PWM channel, Linux-style.
        tree.write(node, "hwmon0/pwm1_enable", "1").expect("manual mode");
        let freqs_khz =
            tree.read(node, "cpufreq/scaling_available_frequencies").expect("ladder readable");
        let freqs_mhz: Vec<u32> =
            freqs_khz.split_whitespace().map(|s| s.parse::<u32>().expect("kHz") / 1000).collect();
        Self {
            tree,
            fan: UnifiedController::new(
                &fan_mode_set(100),
                Policy::MODERATE,
                ControllerConfig::default(),
            ),
            tdvfs: Tdvfs::with_defaults(&freqs_mhz, Policy::MODERATE),
        }
    }

    /// One 4 Hz polling step, entirely through sysfs strings.
    fn poll(&mut self, node: &mut Node) {
        let millic: i64 = self
            .tree
            .read(node, "hwmon0/temp1_input")
            .expect("sensor readable")
            .parse()
            .expect("millidegrees");
        let temp_c = millic as f64 / 1000.0;

        if let Some(decision) = self.fan.observe(temp_c) {
            let raw = DutyCycle::new(decision.mode).to_register();
            self.tree.write(node, "hwmon0/pwm1", &raw.to_string()).expect("pwm writable");
        }
        if let Some(event) = self.tdvfs.observe(temp_c) {
            let khz = event.frequency_mhz() * 1000;
            self.tree
                .write(node, "cpufreq/scaling_setspeed", &khz.to_string())
                .expect("setspeed writable");
        }
    }
}

#[test]
fn sysfs_daemon_controls_the_node_end_to_end() {
    let mut node = Node::new(NodeConfig::default(), 99);
    let mut daemon = SysfsDaemon::new(&mut node);
    let mut burn = CpuBurn::new(5);

    let dt = 0.05;
    let mut since_sample = 0.0;
    let mut max_temp: f64 = 0.0;
    for _ in 0..(400.0 / dt) as usize {
        let out = burn.advance(dt, node.speed_factor());
        node.set_load(out.utilization, out.activity);
        node.tick(dt);
        since_sample += dt;
        if since_sample + 1e-9 >= 0.25 {
            since_sample = 0.0;
            daemon.poll(&mut node);
        }
        max_temp = max_temp.max(node.die_temp_c());
    }

    // The daemon must have engaged the fan well above its starting duty...
    let final_duty = node.state().fan_duty.percent();
    assert!(final_duty > 20, "daemon raised the fan to {final_duty}%");
    // ...kept the node out of thermal emergency...
    assert_eq!(node.cpu().throttle_event_count(), 0, "no emergencies (peak {max_temp:.1}°C)");
    assert!(max_temp < 70.0);
    // ...and the chip really is in manual mode with the daemon's duty.
    let mut tree = SysfsTree::new();
    assert_eq!(tree.read(&mut node, "hwmon0/pwm1_enable").unwrap(), "1");
    let pwm_raw: u8 = tree.read(&mut node, "hwmon0/pwm1").unwrap().parse().unwrap();
    assert_eq!(DutyCycle::from_register(pwm_raw).percent(), final_duty);
}

#[test]
fn sysfs_daemon_with_weak_fan_triggers_dvfs() {
    let mut node = Node::new(NodeConfig::default(), 101);
    let mut daemon = SysfsDaemon::new(&mut node);
    // Emulate a weak fan: rebuild the fan controller with a 25 % cap.
    daemon.fan =
        UnifiedController::new(&fan_mode_set(25), Policy::MODERATE, ControllerConfig::default());

    let mut burn = CpuBurn::new(6);
    let dt = 0.05;
    let mut since_sample = 0.0;
    for _ in 0..(400.0 / dt) as usize {
        let out = burn.advance(dt, node.speed_factor());
        node.set_load(out.utilization, out.activity);
        node.tick(dt);
        since_sample += dt;
        if since_sample + 1e-9 >= 0.25 {
            since_sample = 0.0;
            daemon.poll(&mut node);
        }
    }

    // The capped fan cannot hold 51 °C under burn: tDVFS must have scaled
    // down through cpufreq at least once.
    assert!(node.cpu().freq_transition_count() > 0, "tDVFS engaged through the sysfs path");
    assert!(daemon.tdvfs.scale_down_count() > 0);
}

#[test]
fn chip_automatic_mode_needs_no_daemon_at_all() {
    // Baseline sanity for the same stack: leave the chip in automatic mode
    // and verify the hardware curve does the work.
    let mut node = Node::new(NodeConfig::default(), 102);
    node.set_utilization(1.0);
    for _ in 0..8000 {
        node.tick(0.05);
    }
    let duty = node.state().fan_duty.percent();
    assert!(duty > 30, "automatic curve responded: {duty}%");
    assert_eq!(node.cpu().throttle_event_count(), 0);
}
