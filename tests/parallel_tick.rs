//! Bit-identity of the intra-run node-parallel tick loop.
//!
//! A simulation run with `Scenario::threads > 1` shards its nodes across a
//! persistent worker pool; these tests pin the contract that sharding is
//! *unobservable* in the results: the full `RunReport` — every f64 trace
//! sample, every counter, every retained event record — is identical to
//! the serial run at every thread count, including odd shard sizes,
//! rack-coupled scenarios, and runs with a cluster-wide journal attached
//! (whose "tick order, node order within a tick" stream must also not
//! move).

use std::sync::{Arc, Mutex};

use unitherm::cluster::{
    DvfsScheme, FanScheme, RackConfig, RunReport, Scenario, Simulation, WorkloadSpec,
};
use unitherm::core::control_array::Policy;
use unitherm::core::failsafe::FailsafeConfig;
use unitherm::obs::{EventRecord, EventSink};
use unitherm::simnode::faults::{FaultEvent, FaultPlan};
use unitherm::workload::{NpbBenchmark, NpbClass};

/// Full-fidelity image of a report: the serde encoding covers every field,
/// including event streams and counters, with exact f64 text round-trips.
fn image(report: &RunReport) -> String {
    serde_json::to_string(report).expect("report serializes")
}

/// Runs `scenario` at `threads` and returns the full report image.
fn run_at(scenario: Scenario, threads: usize) -> String {
    image(&Simulation::new(scenario.with_threads(threads)).run())
}

/// Thread counts the identity must hold at: even, power-of-two, and a
/// prime that leaves ragged shard sizes (and exceeds some node counts,
/// exercising the cap at `nodes`).
const THREAD_COUNTS: [usize; 3] = [2, 4, 7];

fn assert_thread_invariant(name: &str, build: impl Fn() -> Scenario) {
    let serial = run_at(build(), 1);
    for threads in THREAD_COUNTS {
        let parallel = run_at(build(), threads);
        assert_eq!(serial, parallel, "{name}: {threads}-thread run diverged from serial");
    }
}

#[test]
fn burn_cluster_is_thread_count_invariant() {
    // 5 nodes: every thread count in the set produces uneven shards.
    assert_thread_invariant("burn", || {
        Scenario::new("par-burn")
            .with_nodes(5)
            .with_seed(0xBEEF)
            .with_workload(WorkloadSpec::CpuBurn)
            .with_fan(FanScheme::dynamic(Policy::MODERATE, 100))
            .with_max_time(30.0)
    });
}

#[test]
fn barrier_coupled_npb_is_thread_count_invariant() {
    // The barrier release is the one cross-node decision in pass A; a BSP
    // workload exercises it every iteration.
    assert_thread_invariant("npb", || {
        Scenario::new("par-npb")
            .with_nodes(6)
            .with_seed(7)
            .with_workload(WorkloadSpec::Npb { bench: NpbBenchmark::Bt, class: NpbClass::A })
            .with_fan(FanScheme::dynamic(Policy::MODERATE, 60))
            .with_dvfs(DvfsScheme::tdvfs(Policy::MODERATE))
            .with_max_time(150.0)
    });
}

#[test]
fn rack_coupled_cluster_is_thread_count_invariant() {
    // Rack coupling adds the f64 heat reduction — the one place where a
    // naive per-shard partial sum would change the bits.
    assert_thread_invariant("rack", || {
        Scenario::new("par-rack")
            .with_nodes(13)
            .with_seed(0xAC)
            .with_workload(WorkloadSpec::CpuBurn)
            .with_fan(FanScheme::dynamic(Policy::MODERATE, 80))
            .with_rack(RackConfig::default())
            .with_max_time(30.0)
    });
}

#[test]
fn faulted_failsafe_cluster_is_thread_count_invariant() {
    // Sensor dropouts + failsafe exercise the sampling pass's trip/release
    // event emission on one node only — shard placement must not matter.
    assert_thread_invariant("failsafe", || {
        Scenario::new("par-failsafe")
            .with_nodes(5)
            .with_seed(3)
            .with_workload(WorkloadSpec::CpuBurn)
            .with_fan(FanScheme::Constant { duty: 20 })
            .with_dvfs(DvfsScheme::tdvfs(Policy::MODERATE))
            .with_failsafe(FailsafeConfig::default())
            .with_fault(
                2,
                FaultPlan::none()
                    .at(5.0, FaultEvent::SensorDropout)
                    .at(15.0, FaultEvent::SensorRestore),
            )
            .with_max_time(30.0)
    });
}

/// A journal that appends into a shared Vec, so the stream survives the
/// simulation consuming its boxed sink.
#[derive(Clone, Default)]
struct SharedSink(Arc<Mutex<Vec<EventRecord>>>);

impl EventSink for SharedSink {
    fn record(&mut self, rec: &EventRecord) {
        self.0.lock().expect("journal lock").push(*rec);
    }
}

fn run_with_journal(threads: usize) -> (String, Vec<EventRecord>) {
    let scenario = Scenario::new("par-journal")
        .with_nodes(5)
        .with_seed(11)
        .with_workload(WorkloadSpec::CpuBurn)
        .with_fan(FanScheme::dynamic(Policy::MODERATE, 100))
        .with_rack(RackConfig::default())
        .with_max_time(20.0)
        .with_threads(threads);
    let sink = SharedSink::default();
    let stream = Arc::clone(&sink.0);
    let mut sim = Simulation::new(scenario);
    sim.attach_journal(Box::new(sink));
    let report = sim.run();
    let events = std::mem::take(&mut *stream.lock().expect("journal lock"));
    (image(&report), events)
}

#[test]
fn journal_stream_is_thread_count_invariant() {
    let (serial_report, serial_events) = run_with_journal(1);
    assert!(!serial_events.is_empty(), "the reference journal must capture events");
    for threads in THREAD_COUNTS {
        let (report, events) = run_with_journal(threads);
        assert_eq!(serial_report, report, "{threads}-thread journal run diverged");
        assert_eq!(
            serial_events, events,
            "{threads}-thread journal stream differs from serial (order or content)"
        );
    }
}

#[test]
fn journal_keeps_node_order_within_each_timestamp() {
    // The documented sink contract, checked structurally rather than
    // against serial: within one emission timestamp, node ids never
    // decrease (pass-B events precede sampling events at the same time, and
    // each pass drains in node order — both groups are separately sorted).
    let (_, events) = run_with_journal(4);
    for window in events.windows(2) {
        let (a, b) = (&window[0], &window[1]);
        assert!(
            b.time_s >= a.time_s,
            "journal time went backwards: {} after {}",
            b.time_s,
            a.time_s
        );
    }
}

#[test]
fn thread_knob_caps_at_node_count() {
    // More threads than nodes must behave exactly like nodes-many threads
    // (the pool is capped), not hang or change results.
    let build = || {
        Scenario::new("par-cap")
            .with_nodes(2)
            .with_workload(WorkloadSpec::CpuBurn)
            .with_fan(FanScheme::dynamic(Policy::MODERATE, 100))
            .with_max_time(10.0)
    };
    assert_eq!(run_at(build(), 1), run_at(build(), 16));
}

#[test]
fn try_new_reports_validation_errors() {
    let bad = Scenario::new("bad").with_nodes(0);
    let Err(err) = Simulation::try_new(bad) else { panic!("zero nodes must be rejected") };
    assert!(err.message().contains("need at least one node"), "{err}");
    let bad_threads = {
        let mut s = Scenario::new("bad-threads");
        s.threads = 0;
        s
    };
    let Err(err) = Simulation::try_new(bad_threads) else {
        panic!("zero threads must be rejected")
    };
    assert!(err.message().contains("worker thread"), "{err}");
}
