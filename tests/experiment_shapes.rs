//! The reproduction contract, executable: every paper table and figure must
//! reproduce its qualitative *shape* — who wins, orderings, crossovers —
//! per `DESIGN.md` §4. (Absolute numbers are not expected to match the
//! authors' 2010 testbed; `EXPERIMENTS.md` records both.)
//!
//! These run the same experiment code as the `repro` binary at `Fast`
//! scale. Each test prints the rendered result on failure so violations are
//! diagnosable from CI logs alone.

use unitherm::experiments::{
    ablations, fig1, fig10, fig2, fig5, fig6, fig7, fig8, fig9, scaling, table1, Experiment, Scale,
};

fn assert_shape(result: &dyn Experiment) {
    let violations = result.shape_violations();
    assert!(
        violations.is_empty(),
        "{} violated its shape criteria:\n{:#?}\n--- rendered result ---\n{}",
        result.id(),
        violations,
        result.render()
    );
}

#[test]
fn fig1_static_fan_curve() {
    assert_shape(&fig1::run(Scale::Fast));
}

#[test]
fn fig2_thermal_behaviour_taxonomy() {
    assert_shape(&fig2::run(Scale::Fast));
}

#[test]
fn fig5_fan_policy_sweep() {
    assert_shape(&fig5::run(Scale::Fast));
}

#[test]
fn fig6_fan_scheme_comparison() {
    assert_shape(&fig6::run(Scale::Fast));
}

#[test]
fn fig7_max_pwm_sweep() {
    assert_shape(&fig7::run(Scale::Fast));
}

#[test]
fn fig8_tdvfs_with_static_fan() {
    assert_shape(&fig8::run(Scale::Fast));
}

#[test]
fn fig9_tdvfs_vs_cpuspeed() {
    assert_shape(&fig9::run(Scale::Fast));
}

#[test]
fn fig10_hybrid_policy_sweep() {
    assert_shape(&fig10::run(Scale::Fast));
}

#[test]
fn table1_governor_comparison() {
    assert_shape(&table1::run(Scale::Fast));
}

#[test]
fn ablation_window_levels() {
    assert_shape(&ablations::window_levels(Scale::Fast));
}

#[test]
fn ablation_l1_size() {
    assert_shape(&ablations::l1_size(Scale::Fast));
}

#[test]
fn ablation_fill_rule() {
    assert_shape(&ablations::fill_rule(Scale::Fast));
}

#[test]
fn ablation_hybrid_isolation() {
    assert_shape(&ablations::hybrid_isolation(Scale::Fast));
}

#[test]
fn ablation_tdvfs_hysteresis() {
    assert_shape(&ablations::tdvfs_hysteresis(Scale::Fast));
}

#[test]
fn scaling_study() {
    assert_shape(&scaling::run(Scale::Fast));
}

#[test]
fn csv_export_works_for_every_experiment() {
    let dir = std::env::temp_dir().join("unitherm_shape_csv");
    let results: Vec<Box<dyn Experiment>> = vec![
        Box::new(fig1::run(Scale::Fast)),
        Box::new(fig2::run(Scale::Fast)),
        Box::new(ablations::fill_rule(Scale::Fast)),
    ];
    for r in &results {
        r.write_csv(&dir).unwrap_or_else(|e| panic!("{} CSV export failed: {e}", r.id()));
    }
    assert!(dir.join("fig1.csv").exists());
    assert!(dir.join("fig2.csv").exists());
    assert!(dir.join("ablate_fill.csv").exists());
    let _ = std::fs::remove_dir_all(&dir);
}
