//! Fault-injection resilience: what happens to the control stack when the
//! world misbehaves — sensors go dark, i2c buses wedge, fans die, machine
//! rooms heat up — with and without the failsafe watchdog.

use unitherm::cluster::{DvfsScheme, FanScheme, Scenario, Simulation, WorkloadSpec};
use unitherm::core::control_array::Policy;
use unitherm::core::failsafe::FailsafeConfig;
use unitherm::obs::{read_journal, JournalWriter};
use unitherm::simnode::faults::{FaultEvent, FaultPlan};

/// A sustained-burn scenario where the sensor goes permanently dark at
/// t = 0.5 s, before the fan controller has meaningfully ramped. The frozen
/// controller holds a low duty against a full-power workload.
fn blind_sensor_scenario(name: &str) -> Scenario {
    let sustained = unitherm::workload::burn::BurnConfig {
        burst_s: (250.0, 300.0),
        gap_s: (4.0, 6.0),
        ..Default::default()
    };
    Scenario::new(name)
        .with_nodes(1)
        .with_seed(0xB11D)
        .with_workload(WorkloadSpec::CpuBurnTuned(sustained))
        .with_fan(FanScheme::dynamic(Policy::MODERATE, 100))
        .with_max_time(600.0)
        .with_fault(0, FaultPlan::none().at(0.5, FaultEvent::SensorDropout))
}

#[test]
fn blind_controller_without_failsafe_overheats() {
    let report = Simulation::new(blind_sensor_scenario("blind-unprotected")).run();
    let node = &report.nodes[0];
    // The controller froze on the last (cool) reading while the burn kept
    // heating; the recorded temperature trace is the *stale* reading, so
    // the hardware monitor counters are the ground truth here.
    assert!(
        node.throttle_events > 0 || node.shut_down,
        "a blind controller under sustained burn must end in a hardware \
         emergency (frozen duty {:.0}%)",
        node.duty.last().map(|s| s.value).unwrap_or(0.0)
    );
}

#[test]
fn failsafe_rescues_a_blind_controller() {
    let report = Simulation::new(
        blind_sensor_scenario("blind-protected").with_failsafe(FailsafeConfig::default()),
    )
    .run();
    let node = &report.nodes[0];
    assert!(node.failsafe_engagements > 0, "failsafe must engage on the blackout");
    assert_eq!(node.throttle_events, 0, "no hardware emergency under failsafe");
    assert!(!node.shut_down);
    // Full fan under burn holds the node in the mid-50s.
    let settled = node.duty.value_at(report.wall_time_s).unwrap_or(0.0);
    assert!(settled >= 99.0, "failsafe holds the fan at full duty, got {settled}%");
}

#[test]
fn failsafe_releases_after_sensor_recovery() {
    let plan =
        FaultPlan::none().at(15.0, FaultEvent::SensorDropout).at(120.0, FaultEvent::SensorRestore);
    let report = Simulation::new(
        Scenario::new("blackout-recovery")
            .with_nodes(1)
            .with_seed(0xB11E)
            .with_workload(WorkloadSpec::Idle) // idle: cools quickly once fan maxes
            .with_fan(FanScheme::dynamic(Policy::MODERATE, 100))
            .with_failsafe(FailsafeConfig::default())
            .with_max_time(400.0)
            .with_fault(0, plan),
    )
    .run();
    let node = &report.nodes[0];
    assert_eq!(node.failsafe_engagements, 1);
    // After recovery + cooling the failsafe released: the fan is no longer
    // pinned at 100 % by the end of the run (idle needs almost none).
    let final_duty = node.duty.last().expect("recorded").value;
    assert!(final_duty < 100.0, "failsafe released, duty {final_duty}%");
}

#[test]
fn failsafe_panic_line_preempts_hardware_throttle() {
    // A weak constant fan under burn marches toward the 70 °C hardware
    // throttle; the failsafe's 65 °C panic line must fire first and force
    // DVFS down, keeping the hardware monitor out of it.
    let report = Simulation::new(
        Scenario::new("panic-line")
            .with_nodes(1)
            .with_seed(0xB11F)
            .with_workload(WorkloadSpec::CpuBurn)
            .with_fan(FanScheme::Constant { duty: 15 })
            .with_failsafe(FailsafeConfig::default())
            .with_max_time(600.0),
    )
    .run();
    let node = &report.nodes[0];
    assert!(node.failsafe_engagements > 0, "panic line must fire");
    assert_eq!(node.throttle_events, 0, "graceful path beats the hardware monitor");
    assert!(node.temp_summary.max < 70.0, "max {:.1}°C", node.temp_summary.max);
}

#[test]
fn ambient_excursion_is_absorbed_by_the_controllers() {
    // A machine-room hot spot (ambient +10 °C) mid-run: the coordinated
    // controllers absorb it without a hardware emergency.
    let report = Simulation::new(
        Scenario::new("hot-spot")
            .with_nodes(1)
            .with_seed(0xB120)
            .with_workload(WorkloadSpec::CpuBurn)
            .with_fan(FanScheme::dynamic(Policy::MODERATE, 100))
            .with_dvfs(DvfsScheme::tdvfs(Policy::MODERATE))
            .with_max_time(500.0)
            .with_fault(0, FaultPlan::none().at(100.0, FaultEvent::AmbientStep(32.0))),
    )
    .run();
    let node = &report.nodes[0];
    assert_eq!(node.throttle_events, 0, "max {:.1}°C", node.temp_summary.max);
    // The excursion shows in the trace…
    assert!(node.temp_summary.max > 50.0);
    // …and the fan responded by running harder after the step.
    let before = node.duty.summary_between(0.0, 100.0).mean;
    let after = node.duty.summary_between(150.0, 500.0).mean;
    assert!(after > before, "duty before {before:.1}% vs after {after:.1}%");
}

#[test]
fn i2c_wedge_leaves_last_duty_but_daemons_survive() {
    // The fan-controller bus NACKs everything from t = 30 s: duty writes
    // fail silently (the daemon keeps running), the fan holds its last
    // commanded duty, and the simulation completes without panicking.
    let report = Simulation::new(
        Scenario::new("i2c-wedge")
            .with_nodes(1)
            .with_seed(0xB121)
            .with_workload(WorkloadSpec::CpuBurn)
            .with_fan(FanScheme::dynamic(Policy::MODERATE, 100))
            .with_dvfs(DvfsScheme::tdvfs(Policy::MODERATE))
            .with_max_time(400.0)
            .with_fault(0, FaultPlan::none().at(30.0, FaultEvent::I2cFailure)),
    )
    .run();
    let node = &report.nodes[0];
    // The in-band side is unaffected by the fan bus: tDVFS still protects
    // the node once the stuck fan lets temperatures climb.
    assert!(
        node.freq_transitions > 0,
        "tDVFS must compensate for the wedged fan bus (max {:.1}°C)",
        node.temp_summary.max
    );
    assert!(!node.shut_down);
}

/// End-to-end NaN resilience: a sensor that is dark from the very first
/// tick starves the control plane of samples for the whole run. Report
/// aggregation must skip whatever non-finite values that produces instead
/// of panicking (report.rs used to `partial_cmp(..).expect(..)` on them),
/// the report must survive a JSON round trip, the journal must read back
/// cleanly — and all of it bit-identically at 1, 2 and 4 threads.
#[test]
fn sensor_dark_from_first_tick_aggregates_and_round_trips() {
    let build = |threads: usize| {
        Scenario::new("dark-from-birth")
            .with_nodes(2)
            .with_seed(0xB122)
            .with_workload(WorkloadSpec::CpuBurn)
            .with_fan(FanScheme::dynamic(Policy::MODERATE, 100))
            .with_dvfs(DvfsScheme::tdvfs(Policy::MODERATE))
            .with_max_time(30.0)
            .with_threads(threads)
            // Both sensors die before the 4 Hz sampler ever produces a
            // reading; no restore, no failsafe — worst case for the
            // aggregation layer.
            .with_fault(0, FaultPlan::none().at(0.05, FaultEvent::SensorDropout))
            .with_fault(1, FaultPlan::none().at(0.05, FaultEvent::SensorDropout))
    };

    let mut jsons = Vec::new();
    for threads in [1usize, 2, 4] {
        let dir = std::env::temp_dir().join(format!("unitherm_nan_e2e_{threads}"));
        std::fs::create_dir_all(&dir).unwrap();
        let journal_path = dir.join("events.jsonl");
        let file = std::fs::File::create(&journal_path).unwrap();
        let mut sim = Simulation::new(build(threads));
        sim.attach_journal(Box::new(JournalWriter::new(std::io::BufWriter::new(file))));
        let report = sim.run();

        // Every aggregate that used to assume finite inputs must answer
        // without panicking and stay finite itself.
        for value in [report.avg_temp_c(), report.avg_node_power_w(), report.avg_duty_pct()] {
            assert!(value.is_finite(), "averages must skip non-finite samples, got {value}");
        }
        // An all-dark trace has no samples: the max folds to -inf (its
        // documented empty value), but it must never be NaN.
        assert!(!report.max_temp_c().is_nan());
        let _ = report.first_dvfs_event_time_s();
        assert!(!report.summary_line().is_empty());

        // The report must survive serde and the journal must read back.
        let json = serde_json::to_string(&report).expect("report serializes");
        let back: unitherm::cluster::RunReport =
            serde_json::from_str(&json).expect("report deserializes");
        assert_eq!(back.nodes.len(), 2);
        let reader = std::io::BufReader::new(std::fs::File::open(&journal_path).unwrap());
        read_journal(reader).expect("journal round-trips");
        let _ = std::fs::remove_dir_all(&dir);
        jsons.push(json);
    }
    assert_eq!(jsons[0], jsons[1], "1-thread vs 2-thread reports diverged");
    assert_eq!(jsons[1], jsons[2], "2-thread vs 4-thread reports diverged");
}
