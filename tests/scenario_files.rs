//! The shipped example scenario files must stay loadable and runnable —
//! they are the first thing a downstream user will try.

use unitherm::experiments::scenario_file;

fn repo_path(rel: &str) -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join(rel)
}

#[test]
fn hot_rack_scenario_loads_and_validates() {
    let s = scenario_file::load(repo_path("examples/scenarios/hot_rack_bt.json")).unwrap();
    assert_eq!(s.name, "hot-rack-bt");
    assert_eq!(s.nodes, 4);
    assert!(s.rack.is_some(), "the hot-rack file couples the rack air");
}

#[test]
fn protected_burn_scenario_runs() {
    let mut s = scenario_file::load(repo_path("examples/scenarios/protected_burn.json")).unwrap();
    assert!(s.failsafe.is_some());
    // Shorten for the test; the file itself carries the full duration.
    s.max_time_s = 20.0;
    let (report, text) = scenario_file::run_and_render(s);
    assert_eq!(report.nodes.len(), 2);
    assert!(!report.any_shutdown());
    assert!(text.contains("node0:"));
}

#[test]
fn hybrid_scenario_loads_and_runs() {
    let mut s = scenario_file::load(repo_path("examples/scenarios/hybrid_burn.json")).unwrap();
    assert_eq!(s.fan_label(), "hybrid(P_p=50, max=30%)");
    assert_eq!(s.dvfs_label(), "hybrid-tDVFS(P_p=50)");
    s.max_time_s = 120.0;
    let (report, _) = scenario_file::run_and_render(s);
    // The capped hybrid fan saturates under burn; coordination hands the
    // remainder to the in-band tDVFS arm.
    assert!(report.total_freq_transitions() > 0, "hybrid tDVFS arm engaged");
    assert!(report.min_commanded_freq_mhz().unwrap() < 2400);
}

#[test]
fn acpi_sleep_scenario_loads_and_runs() {
    let mut s = scenario_file::load(repo_path("examples/scenarios/acpi_sleep_burn.json")).unwrap();
    assert_eq!(s.dvfs_label(), "acpi-sleep(P_p=25)");
    s.max_time_s = 120.0;
    let (report, _) = scenario_file::run_and_render(s);
    // A 15 % fan cannot hold cpu-burn; the sleep daemon's power gating
    // keeps the node both unthrottled and cooler than the CPU's emergency
    // throttle point.
    assert_eq!(report.nodes.len(), 1);
    assert!(report.nodes[0].temp_summary.max < 70.0, "{}", report.nodes[0].temp_summary.max);
}

#[test]
fn scenario_files_round_trip_through_to_json() {
    for file in [
        "examples/scenarios/hot_rack_bt.json",
        "examples/scenarios/protected_burn.json",
        "examples/scenarios/hybrid_burn.json",
        "examples/scenarios/acpi_sleep_burn.json",
    ] {
        let s = scenario_file::load(repo_path(file)).unwrap();
        let json = scenario_file::to_json(&s);
        let reparsed: unitherm::cluster::Scenario = serde_json::from_str(&json).unwrap();
        assert_eq!(reparsed.name, s.name, "{file}");
        assert_eq!(reparsed.fan, s.fan, "{file}");
        assert_eq!(reparsed.scheme, s.scheme, "{file}");
    }
}
