//! The shipped example scenario files must stay loadable and runnable —
//! they are the first thing a downstream user will try.

use unitherm::experiments::scenario_file;

fn repo_path(rel: &str) -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join(rel)
}

#[test]
fn hot_rack_scenario_loads_and_validates() {
    let s = scenario_file::load(repo_path("examples/scenarios/hot_rack_bt.json")).unwrap();
    assert_eq!(s.name, "hot-rack-bt");
    assert_eq!(s.nodes, 4);
    assert!(s.rack.is_some(), "the hot-rack file couples the rack air");
}

#[test]
fn protected_burn_scenario_runs() {
    let mut s = scenario_file::load(repo_path("examples/scenarios/protected_burn.json")).unwrap();
    assert!(s.failsafe.is_some());
    // Shorten for the test; the file itself carries the full duration.
    s.max_time_s = 20.0;
    let (report, text) = scenario_file::run_and_render(s);
    assert_eq!(report.nodes.len(), 2);
    assert!(!report.any_shutdown());
    assert!(text.contains("node0:"));
}

#[test]
fn scenario_files_round_trip_through_to_json() {
    for file in ["examples/scenarios/hot_rack_bt.json", "examples/scenarios/protected_burn.json"] {
        let s = scenario_file::load(repo_path(file)).unwrap();
        let json = scenario_file::to_json(&s);
        let reparsed: unitherm::cluster::Scenario = serde_json::from_str(&json).unwrap();
        assert_eq!(reparsed.name, s.name, "{file}");
        assert_eq!(reparsed.fan, s.fan, "{file}");
    }
}
