//! Property-based tests over the hardware models: register-protocol
//! fuzzing, actuator invariants, and watchdog state-machine properties.

use proptest::prelude::*;

use unitherm::core::failsafe::{Failsafe, FailsafeAction, FailsafeConfig};
use unitherm::core::feedforward::{FeedforwardConfig, UtilizationFeedforward};
use unitherm::simnode::adt7467::Adt7467;
use unitherm::simnode::config::FanConfig;
use unitherm::simnode::fan::Fan;
use unitherm::simnode::i2c::SmbusDevice;
use unitherm::simnode::units::DutyCycle;
use unitherm::workload::{Phase, PhaseWorkload, WorkState, Workload};

proptest! {
    /// The ADT7467 register model never panics on any byte transaction
    /// sequence, and its commanded duty never exceeds the PWM_MAX register.
    #[test]
    fn adt7467_register_fuzz(ops in prop::collection::vec((any::<u8>(), any::<u8>(), any::<bool>()), 1..300)) {
        let mut chip = Adt7467::new();
        for (reg, value, is_write) in ops {
            if is_write {
                let _ = chip.write_byte(reg, value);
            } else {
                let _ = chip.read_byte(reg);
            }
            let max = DutyCycle::from_register(
                chip.read_byte(unitherm::simnode::adt7467::regs::PWM_MAX).unwrap(),
            );
            prop_assert!(
                chip.commanded_duty() <= max,
                "duty {} exceeds PWM_MAX {}",
                chip.commanded_duty(),
                max
            );
        }
    }

    /// The automatic curve is monotone in temperature for any register
    /// configuration the fuzzer can produce.
    #[test]
    fn adt7467_curve_monotone_under_any_registers(
        pwm_min in any::<u8>(),
        pwm_max in any::<u8>(),
        tmin in 0u8..120,
        tmax in 0u8..120,
    ) {
        let mut chip = Adt7467::new();
        let _ = chip.write_byte(unitherm::simnode::adt7467::regs::PWM_MIN, pwm_min);
        let _ = chip.write_byte(unitherm::simnode::adt7467::regs::PWM_MAX, pwm_max);
        let _ = chip.write_byte(unitherm::simnode::adt7467::regs::TMIN, tmin);
        let _ = chip.write_byte(unitherm::simnode::adt7467::regs::TMAX, tmax);
        let mut last = None;
        for t in 0..=130 {
            let d = chip.static_curve_duty(f64::from(t));
            if let Some(prev) = last {
                // Monotone except for the degenerate tmax <= tmin collapse,
                // which pins at the minimum (still monotone as a constant).
                prop_assert!(d >= prev, "curve dropped at {t}°C: {prev} -> {d}");
            }
            last = Some(d);
        }
    }

    /// Fan dynamics: RPM stays within [0, max_rpm], converges toward the
    /// duty target, and never goes negative for any command sequence.
    #[test]
    fn fan_rpm_bounded(commands in prop::collection::vec((0u8..=100, 0.01f64..3.0), 1..100)) {
        let mut fan = Fan::new(FanConfig::default());
        for (duty, dt) in commands {
            fan.set_duty(DutyCycle::new(duty));
            fan.step(dt);
            prop_assert!(fan.rpm() >= 0.0);
            prop_assert!(fan.rpm() <= 4300.0 + 1e-9);
            prop_assert!((0.0..=1.0).contains(&fan.airflow()));
            prop_assert!(fan.power_w() >= 0.0 && fan.power_w() <= 4.8 + 1e-9);
        }
    }

    /// Failsafe alternation: engage and release actions strictly alternate,
    /// and the engagement count matches the number of engage actions, for
    /// any observation sequence.
    #[test]
    fn failsafe_actions_alternate(
        obs in prop::collection::vec(prop::option::of(20.0f64..90.0), 1..500)
    ) {
        let mut fs = Failsafe::new(FailsafeConfig::default());
        let mut engaged = false;
        let mut engages = 0u64;
        for o in obs {
            match fs.observe(o) {
                Some(FailsafeAction::Engage(_)) => {
                    prop_assert!(!engaged, "double engage");
                    engaged = true;
                    engages += 1;
                }
                Some(FailsafeAction::Release) => {
                    prop_assert!(engaged, "release while armed");
                    engaged = false;
                }
                None => {}
            }
            prop_assert_eq!(fs.is_engaged(), engaged);
        }
        prop_assert_eq!(fs.engagement_count(), engages);
    }

    /// Feedforward predictions are bounded by the gain (utilization deltas
    /// cannot exceed 1).
    #[test]
    fn feedforward_prediction_bounded(utils in prop::collection::vec(0.0f64..=1.0, 1..300)) {
        let cfg = FeedforwardConfig::default();
        let mut p = UtilizationFeedforward::new(cfg);
        for u in utils {
            if let Some(delta) = p.observe(u) {
                prop_assert!(delta.abs() <= cfg.gain_c_per_util + 1e-9);
                prop_assert!(delta.abs() >= cfg.deadband_util * cfg.gain_c_per_util - 1e-9);
            }
        }
    }

    /// Mixed phase programs (compute / communicate / barrier) preserve the
    /// workload invariants when barriers are released as they appear.
    #[test]
    fn mixed_phase_program_invariants(
        spec in prop::collection::vec((0usize..3, 0.05f64..1.0, 0.0f64..=1.0), 1..15),
        speed in 0.1f64..=1.0,
    ) {
        let phases: Vec<Phase> = spec
            .iter()
            .map(|&(kind, dur, util)| match kind {
                0 => Phase::compute(dur, util, 0.5),
                1 => Phase::comm(dur, util),
                _ => Phase::Barrier,
            })
            .collect();
        let mut w = PhaseWorkload::new(phases);
        let mut barrier_ids = Vec::new();
        for _ in 0..100_000 {
            match w.state() {
                WorkState::Finished => break,
                WorkState::AtBarrier(id) => {
                    // Barrier ids must be strictly increasing.
                    if let Some(&last) = barrier_ids.last() {
                        prop_assert!(id > last);
                    }
                    barrier_ids.push(id);
                    w.release_barrier();
                }
                WorkState::Running => {
                    let out = w.advance(0.05, speed);
                    prop_assert!((0.0..=1.0).contains(&out.utilization));
                }
            }
        }
        prop_assert!(w.is_finished(), "program must terminate");
    }
}
