//! End-to-end scenario fuzzing: for *any* scenario configuration the
//! simulation must complete without panicking and produce an internally
//! consistent report.

use proptest::prelude::*;

use unitherm::cluster::{DvfsScheme, FanScheme, Scenario, Simulation, WorkloadSpec};
use unitherm::core::control_array::Policy;
use unitherm::core::failsafe::FailsafeConfig;
use unitherm::workload::{NpbBenchmark, NpbClass};

/// Strategy over fan schemes.
fn fan_scheme() -> impl Strategy<Value = FanScheme> {
    prop_oneof![
        (1u8..=100).prop_map(|d| FanScheme::ChipAutomatic { max_duty: d }),
        (1u8..=100).prop_map(|d| FanScheme::Constant { duty: d }),
        (1u32..=100, 1u8..=100).prop_map(|(pp, d)| FanScheme::dynamic(Policy::new(pp).unwrap(), d)),
        (1u32..=100, 1u8..=100)
            .prop_map(|(pp, d)| FanScheme::dynamic_feedforward(Policy::new(pp).unwrap(), d)),
    ]
}

/// Strategy over DVFS schemes.
fn dvfs_scheme() -> impl Strategy<Value = DvfsScheme> {
    prop_oneof![
        Just(DvfsScheme::None),
        (1u32..=100).prop_map(|pp| DvfsScheme::tdvfs(Policy::new(pp).unwrap())),
        Just(DvfsScheme::cpuspeed()),
    ]
}

/// Strategy over workloads (short ones: the fuzz runs many cases).
fn workload() -> impl Strategy<Value = WorkloadSpec> {
    prop_oneof![
        Just(WorkloadSpec::CpuBurn),
        Just(WorkloadSpec::Idle),
        Just(WorkloadSpec::Npb { bench: NpbBenchmark::Cg, class: NpbClass::A }),
        Just(WorkloadSpec::Npb { bench: NpbBenchmark::Ep, class: NpbClass::A }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn any_scenario_produces_a_consistent_report(
        nodes in 1usize..=6,
        seed in any::<u64>(),
        fan in fan_scheme(),
        dvfs in dvfs_scheme(),
        wl in workload(),
        with_failsafe in any::<bool>(),
        with_rack in any::<bool>(),
        max_time in 10.0f64..40.0,
    ) {
        let mut scenario = Scenario::new("fuzz")
            .with_nodes(nodes)
            .with_seed(seed)
            .with_fan(fan)
            .with_dvfs(dvfs)
            .with_workload(wl)
            .with_max_time(max_time);
        if with_failsafe {
            scenario = scenario.with_failsafe(FailsafeConfig::default());
        }
        if with_rack {
            scenario = scenario.with_rack(unitherm::cluster::rack::RackConfig::default());
        }

        let report = Simulation::new(scenario).run();

        // Structural invariants.
        prop_assert_eq!(report.nodes.len(), nodes);
        prop_assert!(report.exec_time_s <= report.wall_time_s + 1e-9);
        prop_assert!(report.wall_time_s <= max_time + 1.0);
        prop_assert_eq!(report.rack_air.is_some(), with_rack);

        // Physical invariants per node.
        for (i, n) in report.nodes.iter().enumerate() {
            prop_assert!(n.avg_wall_power_w >= 0.0, "node {i} power");
            prop_assert!(n.energy_j >= 0.0);
            if n.temp_summary.count > 0 {
                prop_assert!(n.temp_summary.min > -50.0 && n.temp_summary.max < 300.0,
                    "node {i} temps out of physical range: {:?}", n.temp_summary);
            }
            prop_assert!(n.duty_summary.min >= 0.0 && n.duty_summary.max <= 100.0,
                "node {i} duty range");
            // Recorded frequency events must be ladder values.
            for &(t, f) in &n.freq_events {
                prop_assert!(t >= 0.0 && t <= report.wall_time_s + 1e-9);
                prop_assert!([2400, 2200, 2000, 1800, 1000].contains(&f), "off-ladder {f}");
            }
            // Without a failsafe the engagement count must be zero.
            if !with_failsafe {
                prop_assert_eq!(n.failsafe_engagements, 0);
            }
        }

        // Aggregates agree with per-node data.
        let sum_tr: u64 = report.nodes.iter().map(|n| n.freq_transitions).sum();
        prop_assert_eq!(report.total_freq_transitions(), sum_tr);
        let pdp = report.power_delay_product();
        prop_assert!((pdp - report.avg_node_power_w() * report.exec_time_s).abs() < 1e-6);
    }
}
