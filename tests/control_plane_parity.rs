//! Refactor-parity regression for the control plane.
//!
//! Every pre-existing `FanScheme`/`DvfsScheme` arm — plus the hwmon
//! `ControlStack` — is locked to a golden trace snapshot captured from the
//! original per-arm daemon wiring. The traces are compared bit-for-bit
//! (f64s via their raw bit patterns), so any behavioural drift in the
//! scheme → daemon pipeline fails these tests even when summary statistics
//! round the same.
//!
//! Regenerate snapshots (only when a behaviour change is *intended*) with:
//! `UNITHERM_UPDATE_GOLDEN=1 cargo test --test control_plane_parity`
//!
//! `UNITHERM_GOLDEN_THREADS=N` runs every scenario through the intra-run
//! worker pool at N threads; the snapshots must not move (CI regenerates
//! with 4 threads and diffs against the committed serial traces).

use std::fmt::Write as _;
use std::path::PathBuf;

use unitherm::cluster::{DvfsScheme, FanScheme, RunReport, Scenario, Simulation, WorkloadSpec};
use unitherm::core::baseline::StaticFanCurve;
use unitherm::core::control_array::Policy;
use unitherm::core::failsafe::FailsafeConfig;
use unitherm::hwmon::stack::ControlStack;
use unitherm::metrics::TimeSeries;
use unitherm::simnode::faults::{FaultEvent, FaultPlan};
use unitherm::simnode::{Node, NodeConfig};

fn hex(v: f64) -> String {
    format!("{:016x}", v.to_bits())
}

fn write_series(out: &mut String, tag: &str, series: &TimeSeries) {
    writeln!(out, "series {tag} n={}", series.len()).unwrap();
    for s in series.samples() {
        writeln!(out, "  {} {}", hex(s.time_s), hex(s.value)).unwrap();
    }
}

/// A complete, bit-exact textual image of a [`RunReport`].
fn fingerprint(report: &RunReport) -> String {
    let mut out = String::new();
    writeln!(out, "name {}", report.name).unwrap();
    writeln!(out, "fan_label {}", report.fan_label).unwrap();
    writeln!(out, "dvfs_label {}", report.dvfs_label).unwrap();
    writeln!(out, "workload_label {}", report.workload_label).unwrap();
    writeln!(out, "wall_time {}", hex(report.wall_time_s)).unwrap();
    writeln!(out, "exec_time {}", hex(report.exec_time_s)).unwrap();
    writeln!(out, "completed {}", report.completed).unwrap();
    for (i, node) in report.nodes.iter().enumerate() {
        writeln!(out, "node {i}").unwrap();
        writeln!(
            out,
            "counters freq_transitions={} throttle_events={} failsafe_engagements={} shut_down={}",
            node.freq_transitions, node.throttle_events, node.failsafe_engagements, node.shut_down
        )
        .unwrap();
        writeln!(out, "power avg={} energy={}", hex(node.avg_wall_power_w), hex(node.energy_j))
            .unwrap();
        writeln!(
            out,
            "temp_summary count={} mean={} min={} max={} std={}",
            node.temp_summary.count,
            hex(node.temp_summary.mean),
            hex(node.temp_summary.min),
            hex(node.temp_summary.max),
            hex(node.temp_summary.std_dev)
        )
        .unwrap();
        writeln!(
            out,
            "duty_summary count={} mean={} min={} max={} std={}",
            node.duty_summary.count,
            hex(node.duty_summary.mean),
            hex(node.duty_summary.min),
            hex(node.duty_summary.max),
            hex(node.duty_summary.std_dev)
        )
        .unwrap();
        writeln!(out, "freq_events n={}", node.freq_events.len()).unwrap();
        for (t, f) in &node.freq_events {
            writeln!(out, "  {} {f}", hex(*t)).unwrap();
        }
        write_series(&mut out, "temp", &node.temp);
        write_series(&mut out, "duty", &node.duty);
        write_series(&mut out, "freq", &node.freq);
        write_series(&mut out, "power", &node.power);
        write_series(&mut out, "util", &node.util);
    }
    out
}

fn golden_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/golden").join(format!("{name}.trace"))
}

fn assert_matches_golden(name: &str, fingerprint: &str) {
    let path = golden_path(name);
    if std::env::var_os("UNITHERM_UPDATE_GOLDEN").is_some() {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, fingerprint).unwrap();
        return;
    }
    let want = std::fs::read_to_string(&path).unwrap_or_else(|_| {
        panic!("missing golden snapshot {path:?}; regenerate with UNITHERM_UPDATE_GOLDEN=1")
    });
    if want != fingerprint {
        let mismatch = want.lines().zip(fingerprint.lines()).enumerate().find(|(_, (a, b))| a != b);
        match mismatch {
            Some((line, (expected, got))) => panic!(
                "trace `{name}` diverged from golden snapshot at line {}:\n  expected: {expected}\n  got:      {got}",
                line + 1
            ),
            None => panic!(
                "trace `{name}` diverged from golden snapshot: lengths differ ({} vs {} lines)",
                want.lines().count(),
                fingerprint.lines().count()
            ),
        }
    }
}

fn base(name: &str) -> Scenario {
    Scenario::new(name)
        .with_nodes(2)
        .with_seed(0x90_1D_E2)
        .with_workload(WorkloadSpec::CpuBurn)
        .with_max_time(60.0)
}

fn check_scenario(name: &str, scenario: Scenario) {
    // The sharded tick loop is bit-identical to the serial one, so golden
    // traces hold at any thread count (tests/parallel_tick.rs pins the full
    // report; this pins it against the committed serial snapshots too).
    let threads: usize = std::env::var("UNITHERM_GOLDEN_THREADS")
        .ok()
        .map(|v| v.parse().expect("UNITHERM_GOLDEN_THREADS must be a thread count"))
        .unwrap_or(1);
    let report = Simulation::new(scenario.with_threads(threads)).run();
    assert_matches_golden(name, &fingerprint(&report));
}

#[test]
fn fan_chip_automatic_trace_is_stable() {
    check_scenario(
        "fan-chip-auto",
        base("fan-chip-auto").with_fan(FanScheme::ChipAutomatic { max_duty: 75 }),
    );
}

#[test]
fn fan_software_static_trace_is_stable() {
    check_scenario(
        "fan-static-sw",
        base("fan-static-sw")
            .with_fan(FanScheme::SoftwareStatic { curve: StaticFanCurve::default() }),
    );
}

#[test]
fn fan_constant_trace_is_stable() {
    check_scenario("fan-constant", base("fan-constant").with_fan(FanScheme::Constant { duty: 40 }));
}

#[test]
fn fan_dynamic_trace_is_stable() {
    check_scenario(
        "fan-dynamic",
        base("fan-dynamic").with_fan(FanScheme::dynamic(Policy::MODERATE, 100)),
    );
}

#[test]
fn fan_dynamic_feedforward_trace_is_stable() {
    check_scenario(
        "fan-dynamic-ff",
        base("fan-dynamic-ff").with_fan(FanScheme::dynamic_feedforward(Policy::MODERATE, 100)),
    );
}

#[test]
fn dvfs_tdvfs_trace_is_stable() {
    check_scenario(
        "dvfs-tdvfs",
        base("dvfs-tdvfs")
            .with_fan(FanScheme::dynamic(Policy::MODERATE, 50))
            .with_dvfs(DvfsScheme::tdvfs(Policy::MODERATE)),
    );
}

#[test]
fn dvfs_cpuspeed_trace_is_stable() {
    check_scenario(
        "dvfs-cpuspeed",
        base("dvfs-cpuspeed")
            .with_fan(FanScheme::dynamic(Policy::MODERATE, 100))
            .with_dvfs(DvfsScheme::cpuspeed()),
    );
}

#[test]
fn failsafe_engagement_trace_is_stable() {
    // A sensor blackout engages the failsafe (max cooling, lowest
    // frequency); the restore at t = 30 s lets it release and hand control
    // back to the constant-fan + tDVFS daemons — locking both transitions.
    let plan =
        FaultPlan::none().at(10.0, FaultEvent::SensorDropout).at(30.0, FaultEvent::SensorRestore);
    check_scenario(
        "failsafe-engage",
        base("failsafe-engage")
            .with_fan(FanScheme::Constant { duty: 15 })
            .with_dvfs(DvfsScheme::tdvfs(Policy::MODERATE))
            .with_failsafe(FailsafeConfig::default())
            .with_fault(0, plan),
    );
}

#[test]
fn hwmon_control_stack_trace_is_stable() {
    // The single-node platform binding, driven the way the stack docs
    // describe: 20 Hz physics, 4 Hz control, a square-wave utilization
    // pattern exercising ramp-up, tDVFS escalation and recovery.
    let mut node = Node::new(NodeConfig::default(), 7);
    let mut stack = ControlStack::builder(Policy::MODERATE)
        .max_fan_duty(60)
        .with_feedforward()
        .with_tdvfs()
        .with_failsafe()
        .probe(&mut node)
        .expect("hardware reachable");

    let mut out = String::new();
    for tick in 0..2400u32 {
        let phase = (tick / 400) % 2;
        node.set_utilization(if phase == 0 { 1.0 } else { 0.2 });
        node.tick(0.05);
        if (tick + 1) % 5 == 0 {
            let outcome = stack.sample(&mut node);
            writeln!(
                out,
                "tick={} temp={} duty={:?} freq={:?} failsafe={}",
                tick + 1,
                outcome.temp_c.map(hex).unwrap_or_else(|| "none".into()),
                outcome.fan_duty,
                outcome.freq_mhz,
                outcome.failsafe_engaged
            )
            .unwrap();
        }
    }
    assert_matches_golden("hwmon-stack", &out);
}
