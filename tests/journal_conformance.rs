//! Format conformance for the two journal encodings (`docs/FORMATS.md`
//! §2 and §5): converting JSONL → `unitherm-bjl/v1` → JSONL must be
//! byte-identical — both on the committed example journal and on fresh
//! recordings, including a faulted run whose journal carries
//! `FaultInjected` events — and `derive_fault_plan` must produce the
//! same [`ReplayPlan`] no matter which encoding it reads. CI's
//! `journal-conformance` job runs this file plus the same round trip
//! through the `repro journal convert` CLI.

use unitherm::cluster::replay::derive_fault_plan_from_cursor;
use unitherm::cluster::{derive_fault_plan, ReplayOptions, Scenario, Simulation};
use unitherm::experiments::scenario_file;
use unitherm::obs::{
    bjl_to_records, read_journal, records_to_bjl, BinaryJournalReader, EventRecord, EventSink,
    JournalCursor, JournalWriter,
};

fn repo_path(rel: &str) -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join(rel)
}

/// Serializes records the exact way `Simulation::attach_journal` does, so
/// byte-identity against a recorded file is meaningful.
fn to_jsonl(records: &[EventRecord]) -> Vec<u8> {
    let mut writer = JournalWriter::new(Vec::new());
    for rec in records {
        writer.record(rec);
    }
    writer.finish().expect("in-memory journal write")
}

/// JSONL bytes → records → bjl → records → JSONL bytes, asserting identity
/// at every hop. Returns the parsed records for further checks.
fn assert_round_trip(jsonl: &[u8], dt_s: f64) -> Vec<EventRecord> {
    let records = read_journal(jsonl).expect("journal parses");
    let bjl = records_to_bjl(&records, dt_s);
    let decoded = bjl_to_records(&bjl).expect("own bjl decodes");
    assert_eq!(decoded, records, "bjl round trip changed the records");
    assert_eq!(to_jsonl(&decoded), jsonl, "jsonl -> bjl -> jsonl is not byte-identical");
    records
}

#[test]
fn committed_example_journal_round_trips_byte_identically() {
    let path = repo_path("examples/scenarios/replay/recorded_events.jsonl");
    let jsonl = std::fs::read(path).expect("committed journal exists");
    let scenario =
        scenario_file::load(repo_path("examples/scenarios/replay/hybrid_burn_replay.json"))
            .expect("committed scenario loads");
    let records = assert_round_trip(&jsonl, scenario.dt_s);
    assert!(!records.is_empty(), "committed journal must not be empty");
}

fn record_run(scenario: Scenario) -> Vec<u8> {
    let mut sim = Simulation::new(scenario);
    let buf = std::rc::Rc::new(std::cell::RefCell::new(Vec::new()));
    struct Sink(std::rc::Rc<std::cell::RefCell<Vec<EventRecord>>>);
    impl EventSink for Sink {
        fn record(&mut self, rec: &EventRecord) {
            self.0.borrow_mut().push(*rec);
        }
    }
    sim.attach_journal(Box::new(Sink(buf.clone())));
    sim.run();
    let records = buf.borrow();
    to_jsonl(&records)
}

#[test]
fn freshly_recorded_faulted_journal_round_trips_byte_identically() {
    // A faulted run: replay the committed journal's derived plan, so the
    // fresh journal carries `FaultInjected` events alongside the usual
    // control-plane stream.
    let jsonl = std::fs::read(repo_path("examples/scenarios/replay/recorded_events.jsonl"))
        .expect("committed journal exists");
    let scenario =
        scenario_file::load(repo_path("examples/scenarios/replay/hybrid_burn_replay.json"))
            .expect("committed scenario loads");
    let records = read_journal(jsonl.as_slice()).expect("journal parses");
    let plan =
        derive_fault_plan(&records, &scenario, &ReplayOptions::default()).expect("plan derives");
    let faulted = plan.apply(scenario);
    let dt_s = faulted.dt_s;
    let jsonl = record_run(faulted);
    let records = assert_round_trip(&jsonl, dt_s);
    assert!(
        records.iter().any(|r| matches!(r.event, unitherm::obs::Event::FaultInjected { .. })),
        "faulted scenario must journal FaultInjected events"
    );
}

#[test]
fn both_encodings_derive_identical_replay_plans() {
    let jsonl = std::fs::read(repo_path("examples/scenarios/replay/recorded_events.jsonl"))
        .expect("committed journal exists");
    let scenario =
        scenario_file::load(repo_path("examples/scenarios/replay/hybrid_burn_replay.json"))
            .expect("committed scenario loads");
    let records = read_journal(jsonl.as_slice()).expect("journal parses");
    let opts = ReplayOptions::default();

    let from_jsonl = derive_fault_plan(&records, &scenario, &opts).expect("jsonl plan derives");
    let bjl = records_to_bjl(&records, scenario.dt_s);
    let reader = BinaryJournalReader::new(&bjl).expect("own bjl opens");
    let from_bjl =
        derive_fault_plan_from_cursor(JournalCursor::from_binary(&reader), &scenario, &opts)
            .expect("bjl plan derives");

    assert!(!from_jsonl.derived.is_empty(), "committed journal must derive a non-trivial plan");
    assert_eq!(from_jsonl, from_bjl, "the two encodings derived different plans");
}
