//! Chaos-search contract tests (`DESIGN.md` §13).
//!
//! The adversarial search must (a) actually find an outcome-flipping,
//! minimized fault sequence on the shipped attack target, (b) emit
//! counterexamples that re-execute bit-identically at any thread count,
//! and (c) be a pure function of its seed — the corpus must come out
//! byte-identical whether candidates were evaluated on 1, 2 or 4 threads.

use unitherm::cluster::chaos::{chaos_search, report_digest, ChaosConfig, OutcomePredicate};
use unitherm::cluster::{Scenario, Simulation};
use unitherm::experiments::scenario_file;
use unitherm::obs::{Event, EventSink, NullSink, VecSink};

fn repo_path(rel: &str) -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join(rel)
}

/// The shipped attack target, shortened: a protected burn whose failsafe
/// never trips fault-free — the search's job is to make it trip.
fn target() -> Scenario {
    let mut s = scenario_file::load(repo_path("examples/scenarios/protected_burn.json"))
        .expect("shipped scenario loads");
    s.max_time_s = 60.0;
    s
}

/// A small budget that still reliably finds a dropout-driven failsafe trip.
fn quick_config(threads: usize) -> ChaosConfig {
    ChaosConfig {
        seed: 42,
        predicate: OutcomePredicate::FailsafeTrip,
        max_evaluations: 40,
        batch: 8,
        threads,
        ..ChaosConfig::default()
    }
}

#[test]
fn finds_minimizes_and_replays_a_failsafe_flip() {
    let base = target();
    let corpus = chaos_search(&base, &quick_config(2), &mut NullSink).expect("search runs");

    assert!(!corpus.baseline_holds, "protected burn must not trip its failsafe fault-free");
    assert!(
        !corpus.counterexamples.is_empty(),
        "the search must find a failsafe flip within {} evaluations",
        corpus.evaluations
    );
    assert!(corpus.evaluations <= 40, "budget overrun: {}", corpus.evaluations);

    // Ranked cheapest-first, costs consistent with their windows.
    let costs: Vec<u64> = corpus.counterexamples.iter().map(|c| c.cost).collect();
    let mut sorted = costs.clone();
    sorted.sort_unstable();
    assert_eq!(costs, sorted, "corpus must be ranked by cost");
    for entry in &corpus.counterexamples {
        assert_eq!(
            entry.cost,
            entry.faulted_ticks + entry.windows.len() as u64,
            "cost = faulted ticks + window count"
        );
        assert!(entry.outcome.predicate_holds, "a flip of a non-holding baseline must hold");
        assert!(entry.outcome.failsafe_engagements > 0);
    }

    // The top counterexample re-executes bit-identically at 1/2/4 threads,
    // matching the digest recorded in the corpus.
    let entry = &corpus.counterexamples[0];
    for threads in [1usize, 2, 4] {
        let faulted = corpus.apply(base.clone(), 0).expect("entry 0 exists").with_threads(threads);
        let report = Simulation::new(faulted).run();
        assert_eq!(
            report_digest(&report),
            entry.report_digest,
            "replay at {threads} thread(s) diverged from the corpus digest"
        );
        assert!(
            report.nodes.iter().any(|n| n.failsafe_engagements > 0),
            "replayed counterexample must still trip the failsafe"
        );
    }
}

#[test]
fn corpus_is_byte_identical_across_evaluation_thread_budgets() {
    let base = target();
    let runs: Vec<String> = [1usize, 2, 4]
        .iter()
        .map(|&threads| {
            let corpus =
                chaos_search(&base, &quick_config(threads), &mut NullSink).expect("search runs");
            serde_json::to_string_pretty(&corpus).expect("corpus serializes")
        })
        .collect();
    assert_eq!(runs[0], runs[1], "1-thread vs 2-thread corpus diverged");
    assert_eq!(runs[1], runs[2], "2-thread vs 4-thread corpus diverged");
    // Same seed, same scenario: reruns reproduce the corpus exactly.
    let again = chaos_search(&base, &quick_config(2), &mut NullSink).expect("search reruns");
    assert_eq!(runs[1], serde_json::to_string_pretty(&again).expect("serializes"));
}

#[test]
fn corpus_round_trips_serde_and_reapplies() {
    let base = target();
    let corpus = chaos_search(&base, &quick_config(4), &mut NullSink).expect("search runs");
    let json = serde_json::to_string_pretty(&corpus).expect("serialize");
    let back: unitherm::cluster::ChaosCorpus = serde_json::from_str(&json).expect("deserialize");
    assert_eq!(back, corpus);
    assert_eq!(back.schema, unitherm::cluster::CHAOS_SCHEMA);
    // A deserialized corpus installs the same schedules.
    let a = corpus.apply(base.clone(), 0).expect("entry 0");
    let b = back.apply(base, 0).expect("entry 0");
    assert_eq!(a.tick_faults, b.tick_faults);
}

#[test]
fn search_emits_progress_events() {
    let mut sink = VecSink::default();
    let _ = chaos_search(&target(), &quick_config(4), &mut sink).expect("search runs");
    let progress: Vec<_> =
        sink.records.iter().filter(|r| matches!(r.event, Event::SearchProgress { .. })).collect();
    assert!(!progress.is_empty(), "the search must report progress");
    // Evaluation counts are monotonic and times carry no wall clock.
    let mut last = 0u32;
    for rec in &progress {
        if let Event::SearchProgress { evaluated, .. } = rec.event {
            assert!(evaluated >= last, "progress went backwards");
            last = evaluated;
            assert!(rec.time_s.is_finite() && rec.time_s >= 0.0);
        }
    }
}

// Keep the unused-import lint honest: EventSink is the trait bound VecSink
// records through.
#[allow(dead_code)]
fn _sink_is_event_sink(s: &mut VecSink) -> &mut dyn EventSink {
    s
}
