//! The record → derive → replay round trip (`DESIGN.md` §12).
//!
//! A journal recorded from a clean run is fed to
//! [`unitherm::cluster::derive_fault_plan`], which pins fault windows to
//! the exact ticks where that run made decisions. These tests pin the
//! contract end to end: the derived plan is non-empty on a scenario that
//! actually makes decisions, the replayed run is bit-identical at every
//! thread count (report *and* journal stream), and every derived fault is
//! visible in the replayed run — as a `FaultInjected` journal event at its
//! pinned tick, in the per-node `faults_applied` report field, and in the
//! `faults_injected` counter.

use std::sync::{Arc, Mutex};

use unitherm::cluster::replay::classify_fault;
use unitherm::cluster::{derive_fault_plan, ReplayOptions, RunReport, Scenario, Simulation};
use unitherm::experiments::scenario_file;
use unitherm::obs::{read_journal, Event, EventRecord, EventSink};

fn repo_path(rel: &str) -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join(rel)
}

/// The recording scenario: the shipped hybrid-burn example, shortened. A
/// capped hybrid fan under cpu-burn produces fan mode changes *and* a
/// tDVFS engagement, so the derived plan covers more than one fault kind.
fn base_scenario() -> Scenario {
    let mut s = scenario_file::load(repo_path("examples/scenarios/hybrid_burn.json"))
        .expect("shipped scenario loads");
    s.max_time_s = 120.0;
    s
}

/// A journal that appends into a shared Vec, so the stream survives the
/// simulation consuming its boxed sink.
#[derive(Clone, Default)]
struct SharedSink(Arc<Mutex<Vec<EventRecord>>>);

impl EventSink for SharedSink {
    fn record(&mut self, rec: &EventRecord) {
        self.0.lock().expect("journal lock").push(*rec);
    }
}

fn run_with_journal(scenario: Scenario) -> (RunReport, Vec<EventRecord>) {
    let sink = SharedSink::default();
    let stream = Arc::clone(&sink.0);
    let mut sim = Simulation::new(scenario);
    sim.attach_journal(Box::new(sink));
    let report = sim.run();
    let events = std::mem::take(&mut *stream.lock().expect("journal lock"));
    (report, events)
}

fn image(report: &RunReport) -> String {
    serde_json::to_string(report).expect("report serializes")
}

#[test]
fn journal_round_trip_replays_bit_identically_with_pinned_faults() {
    // Record: a clean run with a journal attached.
    let (_, recorded) = run_with_journal(base_scenario());
    assert!(!recorded.is_empty(), "the recording run must emit events");

    // Derive: fault windows pinned to the recorded decisions.
    let base = base_scenario();
    let opts = ReplayOptions::default();
    let plan = derive_fault_plan(&recorded, &base, &opts).expect("clean journal derives");
    assert!(!plan.is_empty(), "hybrid burn makes decisions to derive faults from");
    let dt = base.dt_s;

    // Replay at 1 thread: the reference faulted run.
    let (ref_report, ref_events) = run_with_journal(plan.apply(base_scenario()));
    let ref_image = image(&ref_report);

    // Every derived injection lands on its pinned tick: a FaultInjected
    // record on the right node whose timestamp maps back to exactly the
    // derived tick, with the kind the classifier assigns to that fault.
    for d in &plan.derived {
        let (kind, magnitude) = classify_fault(d.fault);
        let hit = ref_events.iter().any(|rec| {
            rec.node as usize == d.node
                && (rec.time_s / dt).round() as u64 == d.tick
                && matches!(rec.event, Event::FaultInjected { kind: k, magnitude: m }
                    if k == kind && m == magnitude)
        });
        assert!(hit, "derived fault {d:?} missing from the replayed journal at tick {}", d.tick);
    }

    // The same deliveries are visible in the report: per-node fault logs
    // carry (tick, fault) pairs matching the schedule, and the counter sums
    // to the journal's FaultInjected population.
    let injected_events =
        ref_events.iter().filter(|r| matches!(r.event, Event::FaultInjected { .. })).count();
    let applied: usize = ref_report.nodes.iter().map(|n| n.faults_applied.len()).sum();
    assert_eq!(applied, injected_events, "every applied fault must be journaled");
    assert_eq!(
        ref_report.counters_total().faults_injected,
        applied as u64,
        "the faults_injected counter mirrors the fault log"
    );
    for d in &plan.derived {
        assert!(
            ref_report.nodes[d.node].faults_applied.contains(&(d.tick, d.fault)),
            "derived fault {d:?} missing from node {}'s faults_applied",
            d.node
        );
    }

    // Replay at 2 and 4 threads: bit-identical report and journal stream.
    for threads in [2usize, 4] {
        let (report, events) = run_with_journal(plan.apply(base_scenario()).with_threads(threads));
        assert_eq!(ref_image, image(&report), "{threads}-thread faulted replay diverged");
        assert_eq!(ref_events, events, "{threads}-thread faulted journal stream diverged");
    }
}

#[test]
fn derivation_is_a_pure_function_of_the_journal() {
    let (_, recorded) = run_with_journal(base_scenario());
    let a = derive_fault_plan(&recorded, &base_scenario(), &ReplayOptions::default())
        .expect("derive a");
    let b = derive_fault_plan(&recorded, &base_scenario(), &ReplayOptions::default())
        .expect("derive b");
    assert_eq!(a, b);
    assert!(!a.is_empty());
}

#[test]
fn committed_replay_example_derives_a_nonempty_plan() {
    // The shipped example pair (scenario + recorded journal) must keep
    // working as documented in examples/scenarios/replay/README.md.
    let scenario =
        scenario_file::load(repo_path("examples/scenarios/replay/hybrid_burn_replay.json"))
            .expect("example scenario loads");
    let file = std::fs::File::open(repo_path("examples/scenarios/replay/recorded_events.jsonl"))
        .expect("committed journal exists");
    let records = read_journal(std::io::BufReader::new(file)).expect("journal parses");
    assert!(!records.is_empty());
    let plan = derive_fault_plan(&records, &scenario, &ReplayOptions::default())
        .expect("committed journal derives");
    assert!(!plan.is_empty(), "the committed journal must derive fault windows");
    let report = Simulation::new(plan.apply(scenario)).run();
    assert!(!report.any_shutdown(), "the example replay must survive its faults");
    assert!(report.counters_total().faults_injected > 0);
}
