//! End-to-end properties of the observability layer.
//!
//! The event journal is the audit trail for every control decision a run
//! makes, so its invariants have to hold for *any* scenario: events arrive
//! in non-decreasing tick time, tDVFS releases never appear without a
//! preceding engagement, the counters agree with the journal, and every
//! record survives a JSONL round trip.

use std::cell::RefCell;
use std::rc::Rc;

use proptest::prelude::*;

use unitherm::cluster::{DvfsScheme, FanScheme, Scenario, Simulation, WorkloadSpec};
use unitherm::core::control_array::Policy;
use unitherm::obs::{read_journal, Event, EventRecord, EventSink, JournalWriter};

/// A sink whose storage outlives the simulation that owns it, so the
/// journal can be inspected after `into_report` consumes the box.
#[derive(Clone, Default)]
struct SharedSink(Rc<RefCell<Vec<EventRecord>>>);

impl EventSink for SharedSink {
    fn record(&mut self, rec: &EventRecord) {
        self.0.borrow_mut().push(*rec);
    }
}

/// Strategy over control schemes that exercise distinct event kinds: pure
/// fan control, a weak fan that forces tDVFS engagements, and the
/// feedforward + governor combination.
fn scheme() -> impl Strategy<Value = (FanScheme, DvfsScheme)> {
    prop_oneof![
        Just((FanScheme::dynamic(Policy::MODERATE, 100), DvfsScheme::None)),
        Just((FanScheme::dynamic(Policy::MODERATE, 20), DvfsScheme::tdvfs(Policy::MODERATE))),
        Just((FanScheme::dynamic_feedforward(Policy::MODERATE, 50), DvfsScheme::cpuspeed())),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn journal_events_are_ordered_paired_and_counted(
        nodes in 1usize..=4,
        seed in any::<u64>(),
        fan_dvfs in scheme(),
        max_time in 30.0f64..90.0,
    ) {
        let (fan, dvfs) = fan_dvfs;
        let journal = SharedSink::default();
        let scenario = Scenario::new("obs-fuzz")
            .with_nodes(nodes)
            .with_seed(seed)
            .with_fan(fan)
            .with_dvfs(dvfs)
            .with_workload(WorkloadSpec::CpuBurn)
            .with_max_time(max_time);
        let mut sim = Simulation::new(scenario);
        sim.attach_journal(Box::new(journal.clone()));
        let report = sim.run();
        let events = journal.0.borrow();

        // Global ordering: the journal sees ticks in wall order, so event
        // time must be non-decreasing across the whole stream.
        for pair in events.windows(2) {
            prop_assert!(
                pair[1].time_s >= pair[0].time_s,
                "journal time went backwards: {:?} then {:?}", pair[0], pair[1],
            );
        }

        // Every record names a node that exists.
        for rec in events.iter() {
            prop_assert!((rec.node as usize) < nodes, "unknown node in {rec:?}");
        }

        // tDVFS pairing per node: a release only makes sense after at least
        // one engagement since the previous release (one scale-*up* step per
        // release, but possibly several scale-down steps before it).
        for node in 0..nodes as u32 {
            let mut engaged_since_release = 0u32;
            for rec in events.iter().filter(|r| r.node == node) {
                match rec.event {
                    Event::TdvfsEngage { .. } => engaged_since_release += 1,
                    Event::TdvfsRelease { .. } => {
                        prop_assert!(
                            engaged_since_release > 0,
                            "node {node}: TdvfsRelease without a prior TdvfsEngage",
                        );
                        engaged_since_release = 0;
                    }
                    _ => {}
                }
            }
        }

        // The journal is teed from the same observer that bumps the
        // counters, so the counts must agree exactly.
        let totals = report.counters_total();
        prop_assert_eq!(events.len() as u64, totals.events_emitted);
        prop_assert_eq!(
            totals.tdvfs_engagements,
            events.iter().filter(|r| matches!(r.event, Event::TdvfsEngage { .. })).count() as u64
        );
        prop_assert_eq!(
            totals.tdvfs_releases,
            events.iter().filter(|r| matches!(r.event, Event::TdvfsRelease { .. })).count() as u64
        );
    }

    /// Every event stream a real run produces survives the JSONL journal
    /// round trip record-for-record.
    #[test]
    fn journal_jsonl_round_trips(seed in any::<u64>()) {
        let ring = SharedSink::default();
        let scenario = Scenario::new("obs-roundtrip")
            .with_nodes(2)
            .with_seed(seed)
            .with_fan(FanScheme::dynamic(Policy::MODERATE, 20))
            .with_dvfs(DvfsScheme::tdvfs(Policy::MODERATE))
            .with_workload(WorkloadSpec::CpuBurn)
            .with_max_time(60.0);
        let mut sim = Simulation::new(scenario);
        sim.attach_journal(Box::new(ring.clone()));
        sim.run();
        let events = ring.0.borrow();
        prop_assert!(!events.is_empty(), "burn run under a weak fan must emit events");

        let mut writer = JournalWriter::new(Vec::new());
        for rec in events.iter() {
            writer.record(rec);
        }
        let bytes = writer.finish().expect("in-memory journal cannot fail");
        let parsed = read_journal(std::io::Cursor::new(bytes)).expect("writer output parses");
        prop_assert_eq!(parsed.len(), events.len());
        for (a, b) in parsed.iter().zip(events.iter()) {
            prop_assert_eq!(a, b);
        }
    }
}
