//! Property-based tests over the core data structures and the physics
//! substrate: invariants that must hold for *every* configuration, not just
//! the paper's operating points.

use proptest::prelude::*;

use unitherm::core::control_array::{Policy, ThermalControlArray};
use unitherm::core::governor::{CpuSpeedConfig, CpuSpeedGovernor};
use unitherm::core::tdvfs::Tdvfs;
use unitherm::core::window::{TwoLevelWindow, WindowConfig};
use unitherm::metrics::{Summary, TimeSeries};
use unitherm::simnode::config::ThermalConfig;
use unitherm::simnode::thermal::ThermalModel;
use unitherm::simnode::units::DutyCycle;
use unitherm::workload::{Phase, PhaseWorkload, Workload};

// ---------------------------------------------------------------- policies

proptest! {
    /// Eq. (1): n_p is within [1, N] and monotone non-decreasing in P_p.
    #[test]
    fn n_p_bounded_and_monotone(n in 1usize..=256) {
        let mut last = 0usize;
        for pp in 1..=100u32 {
            let np = Policy::new(pp).unwrap().n_p(n);
            prop_assert!(np >= 1 && np <= n, "P_p={pp}: n_p={np} outside [1,{n}]");
            prop_assert!(np >= last, "n_p not monotone at P_p={pp}");
            last = np;
        }
        prop_assert_eq!(Policy::new(1).unwrap().n_p(n), 1);
        prop_assert_eq!(Policy::new(100).unwrap().n_p(n), n);
    }

    /// Control arrays contain only provided modes, are effectiveness-ordered,
    /// start at the least effective mode (for n_p ≥ 2) and end at the most
    /// effective one — for every policy, mode count, and array length.
    #[test]
    fn control_array_invariants(
        pp in 1u32..=100,
        mode_count in 1usize..=64,
        n in 1usize..=200,
    ) {
        // Ascending-effectiveness mode set: 0..mode_count as u8-like ids.
        let modes: Vec<u16> = (0..mode_count as u16).collect();
        let policy = Policy::new(pp).unwrap();
        let arr = ThermalControlArray::build(&modes, policy, n);

        prop_assert_eq!(arr.len(), n);
        prop_assert_eq!(arr.most_effective(), *modes.last().unwrap());
        // Non-descending effectiveness.
        prop_assert!(arr.cells().windows(2).all(|w| w[0] <= w[1]),
            "not effectiveness-ordered: {:?}", arr.cells());
        // Every cell holds a real mode.
        prop_assert!(arr.cells().iter().all(|m| modes.contains(m)));
        // g_1 is the least effective mode whenever the subarray exists.
        if arr.n_p() >= 2 {
            prop_assert_eq!(arr.least_effective(), modes[0]);
        }
        // Cells [n_p, N] all hold g_N.
        for i in arr.n_p()..=n {
            prop_assert_eq!(arr.mode_at(i), *modes.last().unwrap());
        }
    }

    /// Aggressiveness dominance: at every index, a smaller P_p commands a
    /// mode at least as effective as a larger P_p does.
    #[test]
    fn smaller_pp_dominates(pp_small in 1u32..=100, pp_delta in 0u32..=99) {
        let pp_large = (pp_small + pp_delta).min(100);
        let duties: Vec<u8> = (1..=100).collect();
        let small = ThermalControlArray::with_default_len(&duties, Policy::new(pp_small).unwrap());
        let large = ThermalControlArray::with_default_len(&duties, Policy::new(pp_large).unwrap());
        for i in 1..=100 {
            prop_assert!(
                small.mode_at(i) >= large.mode_at(i),
                "index {i}: P{pp_small} duty {} < P{pp_large} duty {}",
                small.mode_at(i), large.mode_at(i)
            );
        }
    }
}

// ----------------------------------------------------------------- windows

proptest! {
    /// Shift invariance: adding a constant to every sample leaves both
    /// deltas unchanged and shifts the average by that constant.
    #[test]
    fn window_shift_invariance(
        samples in prop::collection::vec(20.0f64..90.0, 40),
        shift in -10.0f64..10.0,
    ) {
        let mut a = TwoLevelWindow::default();
        let mut b = TwoLevelWindow::default();
        for &s in &samples {
            let ua = a.push(s);
            let ub = b.push(s + shift);
            match (ua, ub) {
                (Some(x), Some(y)) => {
                    prop_assert!((x.l1_delta - y.l1_delta).abs() < 1e-9);
                    prop_assert!((x.l1_average + shift - y.l1_average).abs() < 1e-9);
                    match (x.l2_delta, y.l2_delta) {
                        (Some(dx), Some(dy)) => prop_assert!((dx - dy).abs() < 1e-9),
                        (None, None) => {}
                        other => prop_assert!(false, "l2 presence mismatch: {other:?}"),
                    }
                }
                (None, None) => {}
                other => prop_assert!(false, "update presence mismatch: {other:?}"),
            }
        }
    }

    /// Perfectly alternating jitter of any amplitude produces zero l1 delta
    /// with the paper's even window length.
    #[test]
    fn window_cancels_alternating_jitter(base in 30.0f64..70.0, amp in 0.0f64..5.0) {
        let mut w = TwoLevelWindow::new(WindowConfig { l1_len: 4, l2_len: 5 });
        for i in 0..40 {
            let s = base + if i % 2 == 0 { amp } else { -amp };
            if let Some(u) = w.push(s) {
                prop_assert!(u.l1_delta.abs() < 1e-9, "jitter leaked: {}", u.l1_delta);
                if let Some(d2) = u.l2_delta {
                    prop_assert!(d2.abs() < 1e-9, "l2 jitter leaked: {d2}");
                }
            }
        }
    }

    /// A linear ramp of slope r per sample yields l1_delta = r·(l1_len/2)²
    /// for any even window length.
    #[test]
    fn window_ramp_delta_is_linear(r in -1.0f64..1.0, half in 1usize..=8) {
        let l1_len = half * 2;
        let mut w = TwoLevelWindow::new(WindowConfig { l1_len, l2_len: 5 });
        let expected = r * (half * half) as f64;
        for i in 0..(l1_len * 3) {
            if let Some(u) = w.push(50.0 + r * i as f64) {
                prop_assert!((u.l1_delta - expected).abs() < 1e-6,
                    "slope {r}, len {l1_len}: delta {} vs expected {expected}", u.l1_delta);
            }
        }
    }
}

// ------------------------------------------------------------------ physics

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Steady state ordering: die ≥ sink ≥ ambient for any non-negative
    /// power and airflow, and the settled simulation matches the analytic
    /// fixed point.
    #[test]
    fn thermal_steady_state_ordering(power in 0.0f64..200.0, airflow in 0.0f64..=1.0) {
        let cfg = ThermalConfig::default();
        let ambient = cfg.ambient_c;
        let model = ThermalModel::new(cfg);
        let (die, sink) = model.steady_state(power, airflow);
        prop_assert!(die >= sink - 1e-9);
        prop_assert!(sink >= ambient - 1e-9);

        let mut m = ThermalModel::new_at_steady_state(ThermalConfig::default(), power, airflow);
        m.step(5.0, power, airflow);
        prop_assert!((m.die_temp_c() - die).abs() < 0.01, "fixed point drifted");
    }

    /// More airflow never heats: die temperature is monotone non-increasing
    /// in airflow at any power.
    #[test]
    fn cooling_monotone_in_airflow(power in 1.0f64..150.0, a in 0.0f64..0.9) {
        let model = ThermalModel::new(ThermalConfig::default());
        let (hot, _) = model.steady_state(power, a);
        let (cool, _) = model.steady_state(power, a + 0.1);
        prop_assert!(cool <= hot + 1e-9);
    }

    /// Integration stability: arbitrary tick widths never produce NaN or
    /// divergence below the analytic bound.
    #[test]
    fn thermal_integration_stable(
        dt in 0.001f64..5.0,
        power in 0.0f64..150.0,
        airflow in 0.0f64..=1.0,
    ) {
        let mut m = ThermalModel::new(ThermalConfig::default());
        let (die_ss, _) = m.steady_state(power, airflow);
        for _ in 0..500 {
            m.step(dt, power, airflow);
            prop_assert!(m.die_temp_c().is_finite());
            prop_assert!(m.die_temp_c() <= die_ss + 1.0, "overshoot past steady state");
            prop_assert!(m.die_temp_c() >= m.ambient_c() - 1.0);
        }
    }

    /// Duty-cycle encodings roundtrip from any fraction.
    #[test]
    fn duty_fraction_register_roundtrip(frac in -0.5f64..1.5) {
        let d = DutyCycle::from_fraction(frac);
        prop_assert!(d.percent() <= 100);
        prop_assert_eq!(DutyCycle::from_register(d.to_register()), d);
    }
}

// ---------------------------------------------------------------- governors

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// CPUSPEED only ever requests ladder frequencies, regardless of the
    /// utilization stream.
    #[test]
    fn cpuspeed_stays_on_ladder(utils in prop::collection::vec(0.0f64..=1.0, 200)) {
        let ladder = [2400u32, 2200, 2000, 1800, 1000];
        let mut g = CpuSpeedGovernor::new(&ladder, CpuSpeedConfig::default());
        let mut changes = 0u64;
        for u in utils {
            if let Some(f) = g.observe(0.25, u) {
                prop_assert!(ladder.contains(&f), "off-ladder frequency {f}");
                changes += 1;
            }
            prop_assert!(ladder.contains(&g.current_frequency_mhz()));
        }
        prop_assert_eq!(changes, g.transition_count());
    }

    /// tDVFS only ever requests ladder frequencies and never overclocks
    /// past the original frequency, for any temperature stream.
    #[test]
    fn tdvfs_stays_on_ladder(temps in prop::collection::vec(30.0f64..80.0, 300)) {
        let ladder = [2400u32, 2200, 2000, 1800, 1000];
        let mut d = Tdvfs::with_defaults(&ladder, Policy::MODERATE);
        for t in temps {
            if let Some(e) = d.observe(t) {
                prop_assert!(ladder.contains(&e.frequency_mhz()));
            }
            prop_assert!(d.current_frequency_mhz() <= 2400);
            prop_assert!(ladder.contains(&d.current_frequency_mhz()));
        }
    }
}

// ---------------------------------------------------------------- workloads

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Phase workloads report utilization in [0,1] and monotone progress,
    /// for random programs and random speed factors.
    #[test]
    fn phase_workload_invariants(
        seed_phases in prop::collection::vec((0.05f64..2.0, 0.0f64..=1.0, 0.0f64..=1.0), 1..12),
        speed in 0.05f64..=1.0,
    ) {
        let phases: Vec<Phase> = seed_phases
            .iter()
            .map(|&(dur, util, sens)| Phase::compute(dur, util, sens))
            .collect();
        let mut w = PhaseWorkload::new(phases);
        let mut last_progress = 0.0;
        for _ in 0..20_000 {
            if w.is_finished() {
                break;
            }
            let out = w.advance(0.05, speed);
            prop_assert!((0.0..=1.0).contains(&out.utilization));
            prop_assert!((0.0..=1.0).contains(&out.activity));
            prop_assert!(w.progress() >= last_progress - 1e-12);
            prop_assert!(w.progress() <= 1.0);
            last_progress = w.progress();
        }
        prop_assert!(w.is_finished(), "workload must finish at speed {speed}");
        prop_assert_eq!(w.progress(), 1.0);
    }
}

// ------------------------------------------------------------------ metrics

proptest! {
    /// Summary invariants: min ≤ mean ≤ max, count matches, std_dev ≥ 0.
    #[test]
    fn summary_invariants(values in prop::collection::vec(-1e6f64..1e6, 1..200)) {
        let s = Summary::of(values.iter().copied());
        prop_assert_eq!(s.count, values.len());
        prop_assert!(s.min <= s.mean + 1e-6);
        prop_assert!(s.mean <= s.max + 1e-6);
        prop_assert!(s.std_dev >= 0.0);
    }

    /// Time-series reductions agree with naive recomputation.
    #[test]
    fn time_series_reductions(values in prop::collection::vec(0.0f64..100.0, 2..100)) {
        let mut ts = TimeSeries::new("p", "");
        for (i, &v) in values.iter().enumerate() {
            ts.push(i as f64, v);
        }
        let naive_mean = values.iter().sum::<f64>() / values.len() as f64;
        prop_assert!((ts.mean().unwrap() - naive_mean).abs() < 1e-9);
        // Uniform sampling: time-weighted mean within the value range.
        let twm = ts.time_weighted_mean().unwrap();
        prop_assert!(twm >= ts.summary().min - 1e-9 && twm <= ts.summary().max + 1e-9);
        // Transition count bounded by len-1.
        prop_assert!(ts.transition_count(0.0) < values.len());
    }
}
