//! Property tests over the `unitherm-bjl/v1` binary journal codec
//! (`docs/FORMATS.md` §5): arbitrary event sequences must survive the
//! encode → decode round trip bit-for-bit, corrupt streams must be
//! rejected with named errors rather than garbage records, and
//! `seek_tick` must land on the first frame at-or-after the requested
//! tick for every journal shape.

use proptest::prelude::*;

use unitherm::obs::{
    bjl_to_records, records_to_bjl, ActuatorKind, BinaryJournalError, BinaryJournalReader,
    CrossDirection, Event, EventRecord, InjectedFault, SearchPhase, TripCause, WindowLevel,
    BJL_FRAME_LEN, BJL_HEADER_LEN,
};

const DT_S: f64 = 0.05;

// ------------------------------------------------------------- strategies

fn actuator() -> impl Strategy<Value = ActuatorKind> {
    prop_oneof![Just(ActuatorKind::Fan), Just(ActuatorKind::Dvfs), Just(ActuatorKind::Sleep)]
}

fn window_level() -> impl Strategy<Value = WindowLevel> {
    prop_oneof![
        Just(WindowLevel::L1),
        Just(WindowLevel::L2),
        Just(WindowLevel::Feedforward),
        Just(WindowLevel::Governor),
    ]
}

fn direction() -> impl Strategy<Value = CrossDirection> {
    prop_oneof![Just(CrossDirection::Above), Just(CrossDirection::Below)]
}

fn trip_cause() -> impl Strategy<Value = TripCause> {
    prop_oneof![Just(TripCause::StaleSensor), Just(TripCause::OverTemperature)]
}

fn fault_kind() -> impl Strategy<Value = InjectedFault> {
    prop_oneof![
        Just(InjectedFault::FanFailure),
        Just(InjectedFault::FanRepair),
        Just(InjectedFault::SensorDropout),
        Just(InjectedFault::SensorRestore),
        Just(InjectedFault::I2cFailure),
        Just(InjectedFault::I2cRecovery),
        Just(InjectedFault::AmbientStep),
        Just(InjectedFault::PwmStuck),
        Just(InjectedFault::PwmRelease),
        Just(InjectedFault::SensorJitter),
    ]
}

fn search_phase() -> impl Strategy<Value = SearchPhase> {
    prop_oneof![Just(SearchPhase::Sample), Just(SearchPhase::Mutate), Just(SearchPhase::Bisect)]
}

/// Every [`Event`] variant with arbitrary payloads.
fn event() -> impl Strategy<Value = Event> {
    prop_oneof![
        (actuator(), window_level(), any::<u32>(), any::<u32>()).prop_map(
            |(actuator, window_level, from, to)| Event::ModeChange {
                actuator,
                from,
                to,
                window_level
            }
        ),
        (any::<f64>(), any::<f64>(), direction()).prop_map(|(threshold_c, temp_c, direction)| {
            Event::ThresholdCross { threshold_c, temp_c, direction }
        }),
        (any::<u32>(), any::<u32>())
            .prop_map(|(from_mhz, to_mhz)| Event::TdvfsEngage { from_mhz, to_mhz }),
        any::<u32>().prop_map(|to_mhz| Event::TdvfsRelease { to_mhz }),
        trip_cause().prop_map(|cause| Event::FailsafeTrip { cause }),
        Just(Event::FailsafeRelease),
        (any::<f64>(), any::<f64>()).prop_map(|(utilization, predicted_delta_c)| {
            Event::PredictionSample { utilization, predicted_delta_c }
        }),
        (fault_kind(), any::<f64>())
            .prop_map(|(kind, magnitude)| Event::FaultInjected { kind, magnitude }),
        (search_phase(), any::<u32>(), any::<u32>(), any::<u64>()).prop_map(
            |(phase, evaluated, counterexamples, best_cost)| Event::SearchProgress {
                phase,
                evaluated,
                counterexamples,
                best_cost
            }
        ),
    ]
}

/// A journal-shaped record stream: tick-stamped times that never decrease
/// (the §2 ordering contract the reader validates at open).
fn records() -> impl Strategy<Value = Vec<EventRecord>> {
    prop::collection::vec((0u64..4, 0u32..64, event()), 0..80).prop_map(|steps| {
        let mut tick = 0u64;
        steps
            .into_iter()
            .map(|(delta, node, event)| {
                tick += delta;
                EventRecord { time_s: tick as f64 * DT_S, node, event }
            })
            .collect()
    })
}

// ------------------------------------------------------------- properties

proptest! {
    /// Encode → decode is the identity on every event variant and payload,
    /// and the encoding is exactly header + one fixed-width frame per event.
    #[test]
    fn round_trip_is_identity(records in records()) {
        let bytes = records_to_bjl(&records, DT_S);
        prop_assert_eq!(bytes.len(), BJL_HEADER_LEN + records.len() * BJL_FRAME_LEN);
        let decoded = bjl_to_records(&bytes).expect("self-produced journal decodes");
        prop_assert_eq!(decoded, records.clone());

        let reader = BinaryJournalReader::new(&bytes).expect("self-produced journal opens");
        prop_assert_eq!(reader.len(), records.len());
        prop_assert_eq!(reader.dt_s(), DT_S);
        for (i, rec) in records.iter().enumerate() {
            prop_assert_eq!(&reader.get(i), rec);
        }
    }

    /// Cutting the stream anywhere off a frame boundary is rejected with a
    /// named truncation error; cutting *on* a boundary yields exactly the
    /// surviving prefix of records.
    #[test]
    fn truncation_is_detected_or_yields_a_prefix(records in records(), cut_frac in 0.0f64..=1.0) {
        let bytes = records_to_bjl(&records, DT_S);
        let cut = ((bytes.len() as f64) * cut_frac) as usize;
        match BinaryJournalReader::new(&bytes[..cut]) {
            Ok(reader) => {
                // Only a whole header plus whole frames may open.
                prop_assert!(cut >= BJL_HEADER_LEN);
                prop_assert!((cut - BJL_HEADER_LEN).is_multiple_of(BJL_FRAME_LEN));
                let kept = (cut - BJL_HEADER_LEN) / BJL_FRAME_LEN;
                prop_assert_eq!(reader.to_records(), records[..kept].to_vec());
            }
            Err(BinaryJournalError::TruncatedHeader { len }) => {
                prop_assert!(cut < BJL_HEADER_LEN);
                prop_assert_eq!(len, cut);
            }
            Err(BinaryJournalError::TruncatedFrame { trailing, .. }) => {
                prop_assert!(cut >= BJL_HEADER_LEN);
                prop_assert_eq!(trailing, (cut - BJL_HEADER_LEN) % BJL_FRAME_LEN);
                prop_assert!(trailing != 0);
            }
            Err(other) => prop_assert!(false, "unexpected error on truncation: {other}"),
        }
    }

    /// Any corruption of the magic or version bytes is rejected by name —
    /// a foreign file can never be misread as a journal.
    #[test]
    fn corrupt_header_is_rejected_by_name(records in records(), byte in 0usize..6, flip in 1u8..=255) {
        let mut bytes = records_to_bjl(&records, DT_S);
        bytes[byte] ^= flip;
        match BinaryJournalReader::new(&bytes) {
            Err(BinaryJournalError::BadMagic { .. }) => prop_assert!(byte < 4),
            Err(BinaryJournalError::UnsupportedVersion { found }) => {
                prop_assert!(byte >= 4);
                prop_assert!(found != 1);
            }
            Ok(_) => prop_assert!(false, "corrupt header byte {byte} accepted"),
            Err(other) => prop_assert!(false, "unexpected error: {other}"),
        }
    }

    /// `seek_tick` returns the index of the first frame stamped at or after
    /// the requested tick — the binary search agrees with a linear scan.
    #[test]
    fn seek_tick_finds_first_frame_at_or_after(records in records(), tick in 0u64..400) {
        let bytes = records_to_bjl(&records, DT_S);
        let reader = BinaryJournalReader::new(&bytes).expect("self-produced journal opens");
        let pos = reader.seek_tick(tick);
        for i in 0..pos {
            prop_assert!(reader.tick(i) < tick, "frame {i} before seek point is >= tick {tick}");
        }
        if pos < reader.len() {
            prop_assert!(reader.tick(pos) >= tick);
        } else {
            prop_assert_eq!(pos, records.len());
        }
    }
}
