//! Offline stand-in for the `criterion` crate.
//!
//! Implements the macro and builder surface the workspace's benches use
//! (`criterion_group!`, `criterion_main!`, `bench_function`,
//! `benchmark_group`, `bench_with_input`, `Throughput`, `BenchmarkId`) as a
//! small wall-clock timing harness: each benchmark runs a short calibrated
//! loop and prints mean time per iteration. No statistics, HTML reports, or
//! baselines — just enough to keep `cargo bench` compiling and producing
//! numbers without registry access.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Prevents the optimizer from deleting a computed value.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Throughput annotation for a benchmark group.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// A benchmark identifier composed of a function name and a parameter.
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// An id labelled `name/parameter`.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId { name: format!("{}/{}", name.into(), parameter) }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.name)
    }
}

/// The per-benchmark timing driver handed to bench closures.
pub struct Bencher {
    iters: u64,
    mean_ns: f64,
}

impl Bencher {
    /// Times `f`, first calibrating an iteration count so the measured loop
    /// runs for roughly the fixed per-benchmark measurement budget.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm-up + calibration: double the count until the loop is long
        // enough to time meaningfully.
        let mut n: u64 = 1;
        let calibrated = loop {
            let start = Instant::now();
            for _ in 0..n {
                black_box(f());
            }
            let elapsed = start.elapsed();
            if elapsed >= Duration::from_millis(5) || n >= 1 << 20 {
                break elapsed.as_nanos() as f64 / n as f64;
            }
            n *= 2;
        };
        self.iters = n;
        self.mean_ns = calibrated;
    }
}

fn format_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

fn report(label: &str, bencher: &Bencher, throughput: Option<Throughput>) {
    let mut line =
        format!("{label:<48} {:>12}/iter ({} iters)", format_ns(bencher.mean_ns), bencher.iters);
    if let Some(tp) = throughput {
        let (count, unit) = match tp {
            Throughput::Elements(n) => (n, "elem"),
            Throughput::Bytes(n) => (n, "B"),
        };
        if bencher.mean_ns > 0.0 {
            let per_sec = count as f64 * 1e9 / bencher.mean_ns;
            line.push_str(&format!("  {per_sec:.0} {unit}/s"));
        }
    }
    println!("{line}");
}

/// The benchmark harness entry point.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Runs a single benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut b = Bencher { iters: 0, mean_ns: 0.0 };
        f(&mut b);
        report(name, &b, None);
        self
    }

    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { _parent: self, name: name.into(), throughput: None }
    }
}

/// A group of related benchmarks sharing a name prefix and throughput.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; the shim auto-calibrates instead.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Accepted for API compatibility; the shim auto-calibrates instead.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Sets the throughput used for rate reporting.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Runs a benchmark within the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Display,
        mut f: F,
    ) -> &mut Self {
        let mut b = Bencher { iters: 0, mean_ns: 0.0 };
        f(&mut b);
        report(&format!("{}/{id}", self.name), &b, self.throughput);
        self
    }

    /// Runs a benchmark parameterized by `input`.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let mut b = Bencher { iters: 0, mean_ns: 0.0 };
        f(&mut b, input);
        report(&format!("{}/{id}", self.name), &b, self.throughput);
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Declares a function that runs the listed benchmark targets.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
    (name = $name:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $cfg;
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_closure() {
        let mut c = Criterion::default();
        let mut ran = false;
        c.bench_function("noop", |b| {
            b.iter(|| black_box(1 + 1));
            ran = true;
        });
        assert!(ran);
    }

    #[test]
    fn group_api_chains() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("g");
        g.sample_size(10).throughput(Throughput::Elements(1));
        g.bench_with_input(BenchmarkId::new("x", 4), &4u32, |b, &n| {
            b.iter(|| black_box(n * 2));
        });
        g.finish();
    }
}
