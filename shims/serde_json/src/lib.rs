//! Offline stand-in for `serde_json`: parses and pretty-prints JSON against
//! the value-tree model of the `serde` shim. Supports the full JSON grammar
//! (objects, arrays, strings with escapes, numbers with exponents, booleans,
//! null) plus the two entry points this workspace uses: [`from_str`] and
//! [`to_string_pretty`].

pub use serde::Value;

/// Error raised by JSON parsing or mapping a value tree onto a Rust type.
#[derive(Debug, Clone)]
pub struct Error {
    msg: String,
    line: usize,
    column: usize,
}

impl Error {
    fn new(msg: impl Into<String>, line: usize, column: usize) -> Self {
        Error { msg: msg.into(), line, column }
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.line > 0 {
            write!(f, "{} at line {} column {}", self.msg, self.line, self.column)
        } else {
            f.write_str(&self.msg)
        }
    }
}

impl std::error::Error for Error {}

/// Result alias matching `serde_json::Result`.
pub type Result<T> = std::result::Result<T, Error>;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(s: &'a str) -> Self {
        Parser { bytes: s.as_bytes(), pos: 0 }
    }

    fn error(&self, msg: impl Into<String>) -> Error {
        let mut line = 1;
        let mut col = 1;
        for &b in &self.bytes[..self.pos.min(self.bytes.len())] {
            if b == b'\n' {
                line += 1;
                col = 1;
            } else {
                col += 1;
            }
        }
        Error::new(msg, line, col)
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<()> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.error(format!("expected `{}`", b as char)))
        }
    }

    fn parse_value(&mut self) -> Result<Value> {
        self.skip_ws();
        match self.peek() {
            None => Err(self.error("unexpected end of input")),
            Some(b'{') => self.parse_object(),
            Some(b'[') => self.parse_array(),
            Some(b'"') => Ok(Value::Str(self.parse_string()?)),
            Some(b't') => self.parse_keyword("true", Value::Bool(true)),
            Some(b'f') => self.parse_keyword("false", Value::Bool(false)),
            Some(b'n') => self.parse_keyword("null", Value::Null),
            Some(b'-') | Some(b'0'..=b'9') => self.parse_number(),
            Some(other) => Err(self.error(format!("unexpected character `{}`", other as char))),
        }
    }

    fn parse_keyword(&mut self, kw: &str, value: Value) -> Result<Value> {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            Ok(value)
        } else {
            Err(self.error(format!("expected `{kw}`")))
        }
    }

    fn parse_object(&mut self) -> Result<Value> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Map(entries));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.parse_value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Map(entries));
                }
                _ => return Err(self.error("expected `,` or `}`")),
            }
        }
    }

    fn parse_array(&mut self) -> Result<Value> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Seq(items));
        }
        loop {
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Seq(items));
                }
                _ => return Err(self.error("expected `,` or `]`")),
            }
        }
    }

    fn parse_string(&mut self) -> Result<String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.error("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.error("bad escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{0008}'),
                        b'f' => out.push('\u{000C}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| self.error("bad \\u escape"))?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| self.error("bad \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.error("bad \\u escape"))?;
                            self.pos += 4;
                            // Surrogate pairs: \uD800-\uDBFF followed by \uDC00-\uDFFF.
                            let ch = if (0xD800..0xDC00).contains(&code) {
                                if self.bytes.get(self.pos) == Some(&b'\\')
                                    && self.bytes.get(self.pos + 1) == Some(&b'u')
                                {
                                    let lo_hex = self
                                        .bytes
                                        .get(self.pos + 2..self.pos + 6)
                                        .ok_or_else(|| self.error("bad surrogate pair"))?;
                                    let lo_hex = std::str::from_utf8(lo_hex)
                                        .map_err(|_| self.error("bad surrogate pair"))?;
                                    let lo = u32::from_str_radix(lo_hex, 16)
                                        .map_err(|_| self.error("bad surrogate pair"))?;
                                    self.pos += 6;
                                    let c = 0x10000 + ((code - 0xD800) << 10) + (lo - 0xDC00);
                                    char::from_u32(c)
                                } else {
                                    None
                                }
                            } else {
                                char::from_u32(code)
                            };
                            out.push(ch.ok_or_else(|| self.error("invalid unicode escape"))?);
                        }
                        other => {
                            return Err(self.error(format!("unknown escape `\\{}`", other as char)))
                        }
                    }
                }
                Some(_) => {
                    // Consume one UTF-8 character (multi-byte safe).
                    let start = self.pos;
                    let rest = std::str::from_utf8(&self.bytes[start..])
                        .map_err(|_| self.error("invalid utf-8"))?;
                    let ch = rest.chars().next().unwrap();
                    out.push(ch);
                    self.pos += ch.len_utf8();
                }
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.error("invalid number"))?;
        if is_float {
            text.parse::<f64>()
                .map(Value::F64)
                .map_err(|_| self.error(format!("invalid number `{text}`")))
        } else if let Ok(i) = text.parse::<i64>() {
            Ok(Value::I64(i))
        } else if let Ok(u) = text.parse::<u64>() {
            Ok(Value::U64(u))
        } else {
            text.parse::<f64>()
                .map(Value::F64)
                .map_err(|_| self.error(format!("invalid number `{text}`")))
        }
    }
}

/// Parses a JSON document into a value tree.
pub fn parse_value(s: &str) -> Result<Value> {
    let mut p = Parser::new(s);
    let v = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.error("trailing characters"));
    }
    Ok(v)
}

/// Deserializes an instance of `T` from a JSON string.
pub fn from_str<T: serde::Deserialize>(s: &str) -> Result<T> {
    let value = parse_value(s)?;
    T::deserialize(&value).map_err(|e| Error::new(e.to_string(), 0, 0))
}

fn escape_into(out: &mut String, s: &str) {
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_f64(out: &mut String, v: f64) {
    if v.is_finite() {
        if v == v.trunc() && v.abs() < 1e16 {
            // Match serde_json: integral floats keep a trailing `.0`.
            out.push_str(&format!("{v:.1}"));
        } else {
            out.push_str(&format!("{v}"));
        }
    } else {
        // serde_json emits null for non-finite floats.
        out.push_str("null");
    }
}

fn write_pretty(out: &mut String, v: &Value, indent: usize) {
    const PAD: &str = "  ";
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::I64(i) => out.push_str(&i.to_string()),
        Value::U64(u) => out.push_str(&u.to_string()),
        Value::F64(f) => write_f64(out, *f),
        Value::Str(s) => escape_into(out, s),
        Value::Seq(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push('\n');
                out.push_str(&PAD.repeat(indent + 1));
                write_pretty(out, item, indent + 1);
            }
            out.push('\n');
            out.push_str(&PAD.repeat(indent));
            out.push(']');
        }
        Value::Map(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, item)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push('\n');
                out.push_str(&PAD.repeat(indent + 1));
                escape_into(out, k);
                out.push_str(": ");
                write_pretty(out, item, indent + 1);
            }
            out.push('\n');
            out.push_str(&PAD.repeat(indent));
            out.push('}');
        }
    }
}

fn write_compact(out: &mut String, v: &Value) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::I64(i) => out.push_str(&i.to_string()),
        Value::U64(u) => out.push_str(&u.to_string()),
        Value::F64(f) => write_f64(out, *f),
        Value::Str(s) => escape_into(out, s),
        Value::Seq(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_compact(out, item);
            }
            out.push(']');
        }
        Value::Map(entries) => {
            out.push('{');
            for (i, (k, item)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                escape_into(out, k);
                out.push(':');
                write_compact(out, item);
            }
            out.push('}');
        }
    }
}

/// Serializes `value` as a pretty-printed (2-space indented) JSON string.
pub fn to_string_pretty<T: serde::Serialize>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_pretty(&mut out, &value.serialize(), 0);
    Ok(out)
}

/// Serializes `value` as a compact JSON string.
pub fn to_string<T: serde::Serialize>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_compact(&mut out, &value.serialize());
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_scalars() {
        assert_eq!(parse_value("42").unwrap(), Value::I64(42));
        assert_eq!(parse_value("-3.5e2").unwrap(), Value::F64(-350.0));
        assert_eq!(parse_value("true").unwrap(), Value::Bool(true));
        assert_eq!(parse_value("null").unwrap(), Value::Null);
        assert_eq!(parse_value("\"a\\nb\"").unwrap(), Value::Str("a\nb".to_string()));
    }

    #[test]
    fn roundtrip_nested() {
        let src = "{\"a\": [1, 2.5, {\"b\": \"x\"}], \"c\": null}";
        let v = parse_value(src).unwrap();
        let pretty = {
            let mut s = String::new();
            write_pretty(&mut s, &v, 0);
            s
        };
        assert_eq!(parse_value(&pretty).unwrap(), v);
    }

    #[test]
    fn integral_float_keeps_point() {
        let mut s = String::new();
        write_f64(&mut s, 300.0);
        assert_eq!(s, "300.0");
    }

    #[test]
    fn rejects_trailing_garbage() {
        assert!(parse_value("1 2").is_err());
    }
}
