//! Offline stand-in for `serde_derive`.
//!
//! Implements `#[derive(Serialize)]` / `#[derive(Deserialize)]` against the
//! value-tree model in the sibling `serde` shim, without depending on
//! `syn`/`quote` (the build environment has no registry access). The parser
//! walks the raw `proc_macro::TokenStream` and supports the shapes this
//! workspace actually uses: named/tuple/unit structs (optionally generic),
//! externally tagged enums with unit/newtype/tuple/struct variants, and the
//! field attributes `#[serde(default)]`, `#[serde(default = "path")]`, and
//! `#[serde(skip)]`.

use proc_macro::{Delimiter, TokenStream, TokenTree};

type Iter = std::iter::Peekable<std::vec::IntoIter<TokenTree>>;

fn tokens(ts: TokenStream) -> Iter {
    ts.into_iter().collect::<Vec<_>>().into_iter().peekable()
}

#[derive(Clone)]
enum DefaultKind {
    None,
    Std,
    Path(String),
}

#[derive(Clone)]
struct SerdeAttrs {
    skip: bool,
    default: DefaultKind,
}

struct Field {
    name: String,
    attrs: SerdeAttrs,
}

enum VariantBody {
    Unit,
    Tuple(usize),
    Named(Vec<Field>),
}

struct Variant {
    name: String,
    body: VariantBody,
}

enum Body {
    NamedStruct(Vec<Field>),
    TupleStruct(usize),
    UnitStruct,
    Enum(Vec<Variant>),
}

struct Input {
    name: String,
    generics: Vec<String>,
    body: Body,
}

fn take_attrs(it: &mut Iter) -> SerdeAttrs {
    let mut attrs = SerdeAttrs { skip: false, default: DefaultKind::None };
    loop {
        match it.peek() {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                it.next();
                if let Some(TokenTree::Group(g)) = it.next() {
                    parse_attr_group(g.stream(), &mut attrs);
                }
            }
            _ => break,
        }
    }
    attrs
}

fn parse_attr_group(ts: TokenStream, attrs: &mut SerdeAttrs) {
    let mut it = tokens(ts);
    match it.next() {
        Some(TokenTree::Ident(id)) if id.to_string() == "serde" => {}
        _ => return,
    }
    let inner = match it.next() {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => g.stream(),
        _ => return,
    };
    let mut it = tokens(inner);
    while let Some(tt) = it.next() {
        if let TokenTree::Ident(id) = tt {
            match id.to_string().as_str() {
                "skip" => attrs.skip = true,
                "default" => {
                    let has_eq =
                        matches!(it.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '=');
                    if has_eq {
                        it.next();
                        if let Some(TokenTree::Literal(lit)) = it.next() {
                            let s = lit.to_string();
                            attrs.default = DefaultKind::Path(s.trim_matches('"').to_string());
                        }
                    } else {
                        attrs.default = DefaultKind::Std;
                    }
                }
                _ => {}
            }
        }
    }
}

fn skip_vis(it: &mut Iter) {
    let is_pub = matches!(it.peek(), Some(TokenTree::Ident(id)) if id.to_string() == "pub");
    if is_pub {
        it.next();
        let has_restriction = matches!(
            it.peek(),
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis
        );
        if has_restriction {
            it.next();
        }
    }
}

fn parse_generics(it: &mut Iter) -> Vec<String> {
    let mut params = Vec::new();
    let opens = matches!(it.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '<');
    if !opens {
        return params;
    }
    it.next();
    let mut depth = 1usize;
    let mut expecting_name = true;
    let mut skip_lifetime_ident = false;
    for tt in it.by_ref() {
        match &tt {
            TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            }
            TokenTree::Punct(p) if p.as_char() == '\'' && depth == 1 => {
                skip_lifetime_ident = true;
            }
            TokenTree::Punct(p) if p.as_char() == ',' && depth == 1 => expecting_name = true,
            TokenTree::Ident(id) if depth == 1 => {
                if skip_lifetime_ident {
                    skip_lifetime_ident = false;
                } else if expecting_name {
                    let s = id.to_string();
                    if s != "const" {
                        params.push(s);
                        expecting_name = false;
                    }
                }
            }
            _ => {}
        }
    }
    params
}

fn parse_named_fields(ts: TokenStream) -> Vec<Field> {
    let mut it = tokens(ts);
    let mut fields = Vec::new();
    loop {
        let attrs = take_attrs(&mut it);
        skip_vis(&mut it);
        let name = match it.next() {
            Some(TokenTree::Ident(id)) => id.to_string(),
            None => break,
            Some(other) => panic!("serde shim derive: unexpected token in fields: {other}"),
        };
        match it.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => panic!("serde shim derive: expected `:` after field `{name}`, got {other:?}"),
        }
        let mut depth = 0i32;
        loop {
            let action = match it.peek() {
                None => 0u8,
                Some(TokenTree::Punct(p)) if p.as_char() == ',' && depth == 0 => 1,
                Some(TokenTree::Punct(p)) if p.as_char() == '<' => 2,
                Some(TokenTree::Punct(p)) if p.as_char() == '>' => 3,
                Some(_) => 4,
            };
            match action {
                0 => break,
                1 => {
                    it.next();
                    break;
                }
                2 => {
                    depth += 1;
                    it.next();
                }
                3 => {
                    depth -= 1;
                    it.next();
                }
                _ => {
                    it.next();
                }
            }
        }
        fields.push(Field { name, attrs });
    }
    fields
}

fn count_tuple_fields(ts: TokenStream) -> usize {
    let mut count = 0usize;
    let mut depth = 0i32;
    let mut pending = false;
    for tt in ts {
        match tt {
            TokenTree::Punct(p) if p.as_char() == '<' => {
                depth += 1;
                pending = true;
            }
            TokenTree::Punct(p) if p.as_char() == '>' => {
                depth -= 1;
                pending = true;
            }
            TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => {
                if pending {
                    count += 1;
                }
                pending = false;
            }
            _ => pending = true,
        }
    }
    if pending {
        count += 1;
    }
    count
}

fn parse_variants(ts: TokenStream) -> Vec<Variant> {
    let mut it = tokens(ts);
    let mut variants = Vec::new();
    loop {
        let _attrs = take_attrs(&mut it);
        let name = match it.next() {
            Some(TokenTree::Ident(id)) => id.to_string(),
            None => break,
            Some(other) => panic!("serde shim derive: unexpected token in enum: {other}"),
        };
        enum Peeked {
            Brace(TokenStream),
            Paren(TokenStream),
            Other,
        }
        let peeked = match it.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Peeked::Brace(g.stream())
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Peeked::Paren(g.stream())
            }
            _ => Peeked::Other,
        };
        let body = match peeked {
            Peeked::Brace(inner) => {
                it.next();
                VariantBody::Named(parse_named_fields(inner))
            }
            Peeked::Paren(inner) => {
                it.next();
                VariantBody::Tuple(count_tuple_fields(inner))
            }
            Peeked::Other => VariantBody::Unit,
        };
        loop {
            match it.next() {
                None => break,
                Some(TokenTree::Punct(p)) if p.as_char() == ',' => break,
                Some(_) => {}
            }
        }
        variants.push(Variant { name, body });
    }
    variants
}

fn parse_input(ts: TokenStream) -> Input {
    let mut it = tokens(ts);
    let _ = take_attrs(&mut it);
    skip_vis(&mut it);
    let kw = match it.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde shim derive: expected `struct`/`enum`, got {other:?}"),
    };
    let name = match it.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde shim derive: expected type name, got {other:?}"),
    };
    let generics = parse_generics(&mut it);
    let at_where = matches!(it.peek(), Some(TokenTree::Ident(id)) if id.to_string() == "where");
    if at_where {
        loop {
            let at_body = match it.peek() {
                None => true,
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => true,
                Some(TokenTree::Punct(p)) if p.as_char() == ';' => true,
                Some(_) => false,
            };
            if at_body {
                break;
            }
            it.next();
        }
    }
    let body = if kw == "enum" {
        match it.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Body::Enum(parse_variants(g.stream()))
            }
            other => panic!("serde shim derive: expected enum body, got {other:?}"),
        }
    } else {
        match it.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Body::NamedStruct(parse_named_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Body::TupleStruct(count_tuple_fields(g.stream()))
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Body::UnitStruct,
            other => panic!("serde shim derive: expected struct body, got {other:?}"),
        }
    };
    Input { name, generics, body }
}

fn impl_header(trait_name: &str, input: &Input) -> String {
    if input.generics.is_empty() {
        format!("impl ::serde::{trait_name} for {} ", input.name)
    } else {
        let bounded: Vec<String> =
            input.generics.iter().map(|g| format!("{g}: ::serde::{trait_name}")).collect();
        format!(
            "impl<{}> ::serde::{trait_name} for {}<{}> ",
            bounded.join(", "),
            input.name,
            input.generics.join(", ")
        )
    }
}

fn serialize_named_fields(fields: &[Field], access: &str) -> String {
    let mut out = String::from(
        "{ let mut __fields: ::std::vec::Vec<(::std::string::String, ::serde::Value)> = ::std::vec::Vec::new();\n",
    );
    for f in fields {
        if f.attrs.skip {
            continue;
        }
        out.push_str(&format!(
            "__fields.push((\"{0}\".to_string(), ::serde::Serialize::serialize({1}{0})));\n",
            f.name, access
        ));
    }
    out.push_str("::serde::Value::Map(__fields) }");
    out
}

fn deserialize_named_fields(fields: &[Field], ty_label: &str, source: &str) -> String {
    let mut out = String::from("{\n");
    for f in fields {
        let expr = if f.attrs.skip {
            "::std::default::Default::default()".to_string()
        } else {
            let missing = match &f.attrs.default {
                DefaultKind::None => format!(
                    "return ::std::result::Result::Err(::serde::Error::missing_field(\"{ty_label}\", \"{}\"))",
                    f.name
                ),
                DefaultKind::Std => "::std::default::Default::default()".to_string(),
                DefaultKind::Path(p) => format!("{p}()"),
            };
            format!(
                "match {source}.get(\"{0}\") {{ ::std::option::Option::Some(__f) => ::serde::Deserialize::deserialize(__f)?, ::std::option::Option::None => {missing} }}",
                f.name
            )
        };
        out.push_str(&format!("{}: {expr},\n", f.name));
    }
    out.push('}');
    out
}

fn gen_serialize(input: &Input) -> String {
    let header = impl_header("Serialize", input);
    let body = match &input.body {
        Body::NamedStruct(fields) => serialize_named_fields(fields, "&self."),
        Body::TupleStruct(1) => "::serde::Serialize::serialize(&self.0)".to_string(),
        Body::TupleStruct(n) => {
            let items: Vec<String> =
                (0..*n).map(|i| format!("::serde::Serialize::serialize(&self.{i})")).collect();
            format!("::serde::Value::Seq(vec![{}])", items.join(", "))
        }
        Body::UnitStruct => "::serde::Value::Null".to_string(),
        Body::Enum(variants) => {
            let mut arms = String::new();
            for v in variants {
                let ty = &input.name;
                let vn = &v.name;
                match &v.body {
                    VariantBody::Unit => arms.push_str(&format!(
                        "{ty}::{vn} => ::serde::Value::Str(\"{vn}\".to_string()),\n"
                    )),
                    VariantBody::Tuple(1) => arms.push_str(&format!(
                        "{ty}::{vn}(__f0) => ::serde::Value::Map(vec![(\"{vn}\".to_string(), ::serde::Serialize::serialize(__f0))]),\n"
                    )),
                    VariantBody::Tuple(n) => {
                        let binders: Vec<String> = (0..*n).map(|i| format!("__f{i}")).collect();
                        let items: Vec<String> = (0..*n)
                            .map(|i| format!("::serde::Serialize::serialize(__f{i})"))
                            .collect();
                        arms.push_str(&format!(
                            "{ty}::{vn}({}) => ::serde::Value::Map(vec![(\"{vn}\".to_string(), ::serde::Value::Seq(vec![{}]))]),\n",
                            binders.join(", "),
                            items.join(", ")
                        ));
                    }
                    VariantBody::Named(fields) => {
                        let binders: Vec<String> = fields
                            .iter()
                            .filter(|f| !f.attrs.skip)
                            .map(|f| f.name.clone())
                            .collect();
                        let mut map_items = String::new();
                        for f in fields.iter().filter(|f| !f.attrs.skip) {
                            map_items.push_str(&format!(
                                "(\"{0}\".to_string(), ::serde::Serialize::serialize({0})),",
                                f.name
                            ));
                        }
                        arms.push_str(&format!(
                            "{ty}::{vn} {{ {}, .. }} => ::serde::Value::Map(vec![(\"{vn}\".to_string(), ::serde::Value::Map(vec![{map_items}]))]),\n",
                            binders.join(", ")
                        ));
                    }
                }
            }
            format!("match self {{\n{arms}}}")
        }
    };
    format!("{header}{{ fn serialize(&self) -> ::serde::Value {{ {body} }} }}")
}

fn gen_deserialize(input: &Input) -> String {
    let header = impl_header("Deserialize", input);
    let ty = &input.name;
    let body = match &input.body {
        Body::NamedStruct(fields) => {
            let ctor = deserialize_named_fields(fields, ty, "__v");
            format!(
                "if !matches!(__v, ::serde::Value::Map(_)) {{ return ::std::result::Result::Err(::serde::Error::expected(\"map for struct {ty}\", __v)); }}\n\
                 ::std::result::Result::Ok({ty} {ctor})"
            )
        }
        Body::TupleStruct(1) => {
            format!("::std::result::Result::Ok({ty}(::serde::Deserialize::deserialize(__v)?))")
        }
        Body::TupleStruct(n) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Deserialize::deserialize(&__items[{i}])?"))
                .collect();
            format!(
                "match __v {{ ::serde::Value::Seq(__items) if __items.len() == {n} => ::std::result::Result::Ok({ty}({})), __other => ::std::result::Result::Err(::serde::Error::expected(\"sequence of {n} for {ty}\", __other)) }}",
                items.join(", ")
            )
        }
        Body::UnitStruct => format!("::std::result::Result::Ok({ty})"),
        Body::Enum(variants) => {
            let mut str_arms = String::new();
            let mut map_arms = String::new();
            for v in variants {
                let vn = &v.name;
                match &v.body {
                    VariantBody::Unit => {
                        str_arms.push_str(&format!(
                            "\"{vn}\" => ::std::result::Result::Ok({ty}::{vn}),\n"
                        ));
                        map_arms.push_str(&format!(
                            "\"{vn}\" => ::std::result::Result::Ok({ty}::{vn}),\n"
                        ));
                    }
                    VariantBody::Tuple(1) => map_arms.push_str(&format!(
                        "\"{vn}\" => ::std::result::Result::Ok({ty}::{vn}(::serde::Deserialize::deserialize(__inner)?)),\n"
                    )),
                    VariantBody::Tuple(n) => {
                        let items: Vec<String> = (0..*n)
                            .map(|i| format!("::serde::Deserialize::deserialize(&__items[{i}])?"))
                            .collect();
                        map_arms.push_str(&format!(
                            "\"{vn}\" => match __inner {{ ::serde::Value::Seq(__items) if __items.len() == {n} => ::std::result::Result::Ok({ty}::{vn}({})), __other => ::std::result::Result::Err(::serde::Error::expected(\"sequence of {n} for variant {vn}\", __other)) }},\n",
                            items.join(", ")
                        ));
                    }
                    VariantBody::Named(fields) => {
                        let label = format!("{ty}::{vn}");
                        let ctor = deserialize_named_fields(fields, &label, "__inner");
                        map_arms.push_str(&format!(
                            "\"{vn}\" => {{ if !matches!(__inner, ::serde::Value::Map(_)) {{ return ::std::result::Result::Err(::serde::Error::expected(\"map for variant {vn}\", __inner)); }} ::std::result::Result::Ok({ty}::{vn} {ctor}) }},\n"
                        ));
                    }
                }
            }
            format!(
                "match __v {{\n\
                   ::serde::Value::Str(__s) => match __s.as_str() {{\n{str_arms}\
                     __other => ::std::result::Result::Err(::serde::Error::unknown_variant(\"{ty}\", __other)),\n\
                   }},\n\
                   ::serde::Value::Map(__entries) if __entries.len() == 1 => {{\n\
                     let (__key, __inner) = &__entries[0];\n\
                     match __key.as_str() {{\n{map_arms}\
                       __other => ::std::result::Result::Err(::serde::Error::unknown_variant(\"{ty}\", __other)),\n\
                     }}\n\
                   }}\n\
                   __other => ::std::result::Result::Err(::serde::Error::expected(\"string or single-key map for enum {ty}\", __other)),\n\
                 }}"
            )
        }
    };
    format!(
        "{header}{{ fn deserialize(__v: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{ {body} }} }}"
    )
}

/// Derives the serde shim's `Serialize` trait.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let parsed = parse_input(input);
    gen_serialize(&parsed)
        .parse()
        .expect("serde shim derive: generated Serialize impl failed to parse")
}

/// Derives the serde shim's `Deserialize` trait.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let parsed = parse_input(input);
    gen_deserialize(&parsed)
        .parse()
        .expect("serde shim derive: generated Deserialize impl failed to parse")
}
