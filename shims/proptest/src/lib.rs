//! Offline stand-in for the `proptest` crate.
//!
//! Provides the subset of the proptest API this workspace's property tests
//! use: the `proptest!` macro (with optional `#![proptest_config(...)]`),
//! `prop_assert!`/`prop_assert_eq!`, `prop_oneof!`, `Just`, `any`,
//! `prop::collection::vec`, `prop::option::of`, range strategies, tuple
//! strategies, and `.prop_map`. Instead of shrinking counterexamples it
//! simply runs N deterministic cases per test (seeded from the test name),
//! so failures reproduce across runs.

use std::marker::PhantomData;

/// Deterministic per-test random source.
pub struct TestRng {
    inner: rand::rngs::SmallRng,
}

impl TestRng {
    /// Creates a generator seeded from the test's name (FNV-1a), so each
    /// test gets a stable, independent stream.
    pub fn for_test(name: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        use rand::SeedableRng;
        TestRng { inner: rand::rngs::SmallRng::seed_from_u64(h) }
    }
}

impl rand::RngCore for TestRng {
    fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }
}

/// Runner configuration (only `cases` is honoured).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to run per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// A generator of random values of an associated type.
pub trait Strategy {
    /// The type of value this strategy generates.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Type-erases the strategy (used by `prop_oneof!`).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(move |rng| self.sample(rng)))
    }
}

/// A type-erased strategy.
pub struct BoxedStrategy<V>(Box<dyn Fn(&mut TestRng) -> V>);

impl<V> Strategy for BoxedStrategy<V> {
    type Value = V;
    fn sample(&self, rng: &mut TestRng) -> V {
        (self.0)(rng)
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// The result of [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn sample(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.sample(rng))
    }
}

/// A uniform choice between type-erased alternatives (see `prop_oneof!`).
pub struct Union<V>(Vec<BoxedStrategy<V>>);

impl<V> Union<V> {
    /// Builds a union over the given alternatives.
    pub fn new(arms: Vec<BoxedStrategy<V>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union(arms)
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;
    fn sample(&self, rng: &mut TestRng) -> V {
        use rand::RngCore;
        let i = (rng.next_u64() % self.0.len() as u64) as usize;
        self.0[i].sample(rng)
    }
}

impl<T> Strategy for std::ops::Range<T>
where
    std::ops::Range<T>: rand::SampleRange<T> + Clone,
{
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        rand::SampleRange::sample(self.clone(), rng)
    }
}

impl<T> Strategy for std::ops::RangeInclusive<T>
where
    std::ops::RangeInclusive<T>: rand::SampleRange<T> + Clone,
{
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        rand::SampleRange::sample(self.clone(), rng)
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($name:ident : $idx:tt),+);)*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A: 0, B: 1);
    (A: 0, B: 1, C: 2);
    (A: 0, B: 1, C: 2, D: 3);
    (A: 0, B: 1, C: 2, D: 3, E: 4);
}

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    /// Draws an arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                use rand::RngCore;
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        use rand::RngCore;
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        use rand::RngCore;
        // Finite values across a wide dynamic range (no NaN/inf).
        (rng.next_f64() * 2.0 - 1.0) * 1e9
    }
}

/// The strategy returned by [`any`].
pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// A strategy for any value of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

/// Collection and combinator strategies, mirroring `proptest::prop`.
pub mod prop {
    /// `Vec` strategies.
    pub mod collection {
        use crate::{Strategy, TestRng};

        /// Things usable as a vec length specification.
        pub trait SizeRange {
            /// Picks a concrete length.
            fn pick(&self, rng: &mut TestRng) -> usize;
        }

        impl SizeRange for usize {
            fn pick(&self, _rng: &mut TestRng) -> usize {
                *self
            }
        }

        impl SizeRange for std::ops::Range<usize> {
            fn pick(&self, rng: &mut TestRng) -> usize {
                rand::SampleRange::sample(self.clone(), rng)
            }
        }

        impl SizeRange for std::ops::RangeInclusive<usize> {
            fn pick(&self, rng: &mut TestRng) -> usize {
                rand::SampleRange::sample(self.clone(), rng)
            }
        }

        /// The strategy returned by [`vec()`].
        pub struct VecStrategy<S, R> {
            element: S,
            size: R,
        }

        impl<S: Strategy, R: SizeRange> Strategy for VecStrategy<S, R> {
            type Value = Vec<S::Value>;
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                let n = self.size.pick(rng);
                (0..n).map(|_| self.element.sample(rng)).collect()
            }
        }

        /// A strategy for vectors whose elements come from `element` and
        /// whose length comes from `size`.
        pub fn vec<S: Strategy, R: SizeRange>(element: S, size: R) -> VecStrategy<S, R> {
            VecStrategy { element, size }
        }
    }

    /// `Option` strategies.
    pub mod option {
        use crate::{Strategy, TestRng};

        /// The strategy returned by [`of`].
        pub struct OptionStrategy<S>(S);

        impl<S: Strategy> Strategy for OptionStrategy<S> {
            type Value = Option<S::Value>;
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                use rand::RngCore;
                // Match proptest's default: Some ~75% of the time.
                if rng.next_u64().is_multiple_of(4) {
                    None
                } else {
                    Some(self.0.sample(rng))
                }
            }
        }

        /// A strategy for `Option<T>` given a strategy for `T`.
        pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
            OptionStrategy(inner)
        }
    }
}

/// Everything the property tests import.
pub mod prelude {
    pub use crate::prop;
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_oneof, proptest, Any, Arbitrary, BoxedStrategy,
        Just, ProptestConfig, Strategy, TestRng, Union,
    };
}

/// Defines property tests: each `fn name(arg in strategy, ...)` becomes a
/// `#[test]` running `cases` deterministic random cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { cfg = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { cfg = $crate::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (cfg = $cfg:expr; $( $(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::ProptestConfig = $cfg;
                let mut __rng = $crate::TestRng::for_test(concat!(module_path!(), "::", stringify!($name)));
                for __case in 0..__config.cases {
                    $(let $arg = $crate::Strategy::sample(&($strat), &mut __rng);)+
                    $body
                }
            }
        )*
    };
}

/// Asserts a condition inside a property test.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+) };
}

/// Asserts equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_eq!($a, $b, $($fmt)+) };
}

/// A uniform choice among several strategies with a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::Union::new(vec![ $( $crate::Strategy::boxed($arm) ),+ ])
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    proptest! {
        #[test]
        fn ranges_in_bounds(x in 1usize..=10, y in 0.0f64..1.0) {
            prop_assert!((1..=10).contains(&x));
            prop_assert!((0.0..1.0).contains(&y), "y={y}");
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]
        #[test]
        fn combinators_work(
            v in prop::collection::vec((any::<u8>(), 0.0f64..=1.0), 1..20),
            o in prop::option::of(1u32..5),
            m in (1u8..=100).prop_map(|d| d as u32 * 2),
        ) {
            prop_assert!(!v.is_empty() && v.len() < 20);
            if let Some(x) = o {
                prop_assert!((1..5).contains(&x));
            }
            prop_assert!((2..=200).contains(&m));
            prop_assert_eq!(m % 2, 0);
        }
    }

    #[test]
    fn oneof_samples_every_arm_eventually() {
        let s = prop_oneof![Just(1u8), Just(2u8), Just(3u8)];
        let mut rng = TestRng::for_test("oneof");
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[s.sample(&mut rng) as usize] = true;
        }
        assert!(seen[1] && seen[2] && seen[3]);
    }

    #[test]
    fn deterministic_across_runs() {
        let mut a = TestRng::for_test("t");
        let mut b = TestRng::for_test("t");
        let strat = prop::collection::vec(0.0f64..1.0, 0..50);
        for _ in 0..20 {
            assert_eq!(strat.sample(&mut a), strat.sample(&mut b));
        }
    }
}
