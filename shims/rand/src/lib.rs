//! Offline stand-in for the `rand` crate (0.8 API subset).
//!
//! Backs `SmallRng` with a splitmix64-seeded xorshift64* generator. The
//! stream differs from upstream `rand`'s, but every consumer in this
//! workspace only requires determinism with respect to itself (fixed seed →
//! fixed trace), which this provides.

/// A type that can be seeded from a `u64`.
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Ranges usable with [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws a value uniformly from the range.
    fn sample(self, rng: &mut dyn RngCore) -> T;
}

/// The raw entropy source behind the ergonomic [`Rng`] methods.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns a uniform `f64` in `[0, 1)`.
    fn next_f64(&mut self) -> f64 {
        // 53 mantissa bits → uniform double in [0, 1).
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Types producible by [`Rng::gen`] (the `Standard` distribution).
pub trait Standard: Sized {
    /// Draws a value from the standard distribution.
    fn standard(rng: &mut dyn RngCore) -> Self;
}

impl Standard for f64 {
    fn standard(rng: &mut dyn RngCore) -> Self {
        rng.next_f64()
    }
}

impl Standard for f32 {
    fn standard(rng: &mut dyn RngCore) -> Self {
        rng.next_f64() as f32
    }
}

impl Standard for u64 {
    fn standard(rng: &mut dyn RngCore) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn standard(rng: &mut dyn RngCore) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for bool {
    fn standard(rng: &mut dyn RngCore) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_int_range {
    ($($t:ty => $wide:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample(self, rng: &mut dyn RngCore) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let span = (self.end as $wide).wrapping_sub(self.start as $wide) as u64;
                let v = rng.next_u64() % span;
                (self.start as $wide).wrapping_add(v as $wide) as $t
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample(self, rng: &mut dyn RngCore) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range in gen_range");
                let span = (end as $wide).wrapping_sub(start as $wide) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                let v = rng.next_u64() % (span + 1);
                (start as $wide).wrapping_add(v as $wide) as $t
            }
        }
    )*};
}

impl_int_range!(
    u8 => u64, u16 => u64, u32 => u64, u64 => u64, usize => u64,
    i8 => i64, i16 => i64, i32 => i64, i64 => i64, isize => i64
);

impl SampleRange<f64> for std::ops::Range<f64> {
    fn sample(self, rng: &mut dyn RngCore) -> f64 {
        assert!(self.start < self.end, "empty range in gen_range");
        let v = self.start + rng.next_f64() * (self.end - self.start);
        // Guard against rounding up to the excluded endpoint.
        if v >= self.end {
            self.start
        } else {
            v
        }
    }
}

impl SampleRange<f64> for std::ops::RangeInclusive<f64> {
    fn sample(self, rng: &mut dyn RngCore) -> f64 {
        let (start, end) = (*self.start(), *self.end());
        assert!(start <= end, "empty range in gen_range");
        let v = start + rng.next_f64() * (end - start);
        v.clamp(start, end)
    }
}

/// Ergonomic random-value methods, blanket-implemented for every `RngCore`.
pub trait Rng: RngCore {
    /// Draws a value from the standard distribution (`gen::<f64>()` is
    /// uniform in `[0, 1)`).
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::standard(self)
    }

    /// Draws a value uniformly from `range`.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        self.next_f64() < p
    }
}

impl<R: RngCore> Rng for R {}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A small, fast, non-cryptographic generator (xorshift64*).
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        state: u64,
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            // splitmix64 scrambles low-entropy seeds (0, 1, 2, ...) into
            // well-distributed initial states; never yields 0 for state.
            let mut z = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            SmallRng { state: if z == 0 { 0x9E37_79B9_7F4A_7C15 } else { z } }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let mut x = self.state;
            x ^= x >> 12;
            x ^= x << 25;
            x ^= x >> 27;
            self.state = x;
            x.wrapping_mul(0x2545_F491_4F6C_DD1D)
        }
    }
}

/// Prelude mirroring `rand::prelude`.
pub mod prelude {
    pub use super::rngs::SmallRng;
    pub use super::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn deterministic_for_seed() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn distinct_seeds_diverge() {
        let mut a = SmallRng::seed_from_u64(1);
        let mut b = SmallRng::seed_from_u64(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn unit_interval() {
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v: f64 = rng.gen();
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = SmallRng::seed_from_u64(9);
        for _ in 0..1000 {
            let v = rng.gen_range(3.0f64..7.0);
            assert!((3.0..7.0).contains(&v));
            let w = rng.gen_range(10u32..=20);
            assert!((10..=20).contains(&w));
            let x = rng.gen_range(-5i64..5);
            assert!((-5..5).contains(&x));
        }
    }
}
