//! Offline stand-in for the `serde` crate.
//!
//! The build environment has no crates.io access, so this workspace vendors a
//! minimal serde-compatible surface: a self-describing [`Value`] tree, the
//! [`Serialize`]/[`Deserialize`] traits expressed against it, and re-exported
//! derive macros (see the sibling `serde_derive` shim). The supported feature
//! set is exactly what this repository uses: named/tuple/generic structs,
//! externally tagged enums, and the `default`, `default = "path"`, and `skip`
//! field attributes.

pub use serde_derive::{Deserialize, Serialize};

/// A self-describing data value — the meeting point between `Serialize`
/// and data formats (the `serde_json` shim parses/prints this tree).
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// A boolean.
    Bool(bool),
    /// A signed integer.
    I64(i64),
    /// An unsigned integer too large for `i64`.
    U64(u64),
    /// A floating-point number.
    F64(f64),
    /// A string.
    Str(String),
    /// An ordered sequence.
    Seq(Vec<Value>),
    /// An ordered map with string keys (preserves insertion order).
    Map(Vec<(String, Value)>),
}

impl Value {
    /// Looks up a key in a `Map` value.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Map(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Numeric view as `f64` (integers widen).
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Value::I64(v) => Some(v as f64),
            Value::U64(v) => Some(v as f64),
            Value::F64(v) => Some(v),
            _ => None,
        }
    }

    /// Numeric view as `i64` (floats must be integral).
    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Value::I64(v) => Some(v),
            Value::U64(v) => i64::try_from(v).ok(),
            Value::F64(v) if v.fract() == 0.0 && v.abs() < 9.0e18 => Some(v as i64),
            _ => None,
        }
    }

    /// Numeric view as `u64`.
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Value::I64(v) => u64::try_from(v).ok(),
            Value::U64(v) => Some(v),
            Value::F64(v) if v.fract() == 0.0 && (0.0..1.9e19).contains(&v) => Some(v as u64),
            _ => None,
        }
    }

    /// A short name for the value's shape, used in error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::I64(_) | Value::U64(_) => "integer",
            Value::F64(_) => "float",
            Value::Str(_) => "string",
            Value::Seq(_) => "sequence",
            Value::Map(_) => "map",
        }
    }
}

/// Serialization/deserialization error.
#[derive(Debug, Clone)]
pub struct Error(String);

impl Error {
    /// An error with a custom message.
    pub fn custom(msg: impl std::fmt::Display) -> Self {
        Error(msg.to_string())
    }

    /// A "missing field" error, mirroring serde's message shape.
    pub fn missing_field(ty: &str, field: &str) -> Self {
        Error(format!("missing field `{field}` for `{ty}`"))
    }

    /// An "unknown variant" error.
    pub fn unknown_variant(ty: &str, variant: &str) -> Self {
        Error(format!("unknown variant `{variant}` for enum `{ty}`"))
    }

    /// A type mismatch error.
    pub fn expected(what: &str, got: &Value) -> Self {
        Error(format!("expected {what}, found {}", got.kind()))
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

/// A type that can render itself as a [`Value`] tree.
pub trait Serialize {
    /// Serializes `self` into a value tree.
    fn serialize(&self) -> Value;
}

/// A type that can be reconstructed from a [`Value`] tree.
pub trait Deserialize: Sized {
    /// Deserializes an instance from a value tree.
    fn deserialize(value: &Value) -> Result<Self, Error>;
}

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize(&self) -> Value { Value::I64(*self as i64) }
        }
        impl Deserialize for $t {
            fn deserialize(value: &Value) -> Result<Self, Error> {
                let v = value.as_i64().ok_or_else(|| Error::expected(stringify!($t), value))?;
                <$t>::try_from(v).map_err(|_| Error::custom(format!("{v} out of range for {}", stringify!($t))))
            }
        }
    )*};
}

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize(&self) -> Value {
                let v = *self as u64;
                match i64::try_from(v) {
                    Ok(i) => Value::I64(i),
                    Err(_) => Value::U64(v),
                }
            }
        }
        impl Deserialize for $t {
            fn deserialize(value: &Value) -> Result<Self, Error> {
                let v = value.as_u64().ok_or_else(|| Error::expected(stringify!($t), value))?;
                <$t>::try_from(v).map_err(|_| Error::custom(format!("{v} out of range for {}", stringify!($t))))
            }
        }
    )*};
}

impl_signed!(i8, i16, i32, i64, isize);
impl_unsigned!(u8, u16, u32, u64, usize);

impl Serialize for f64 {
    fn serialize(&self) -> Value {
        Value::F64(*self)
    }
}
impl Deserialize for f64 {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        value.as_f64().ok_or_else(|| Error::expected("f64", value))
    }
}

impl Serialize for f32 {
    fn serialize(&self) -> Value {
        Value::F64(*self as f64)
    }
}
impl Deserialize for f32 {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        value.as_f64().map(|v| v as f32).ok_or_else(|| Error::expected("f32", value))
    }
}

impl Serialize for bool {
    fn serialize(&self) -> Value {
        Value::Bool(*self)
    }
}
impl Deserialize for bool {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Bool(b) => Ok(*b),
            other => Err(Error::expected("bool", other)),
        }
    }
}

impl Serialize for String {
    fn serialize(&self) -> Value {
        Value::Str(self.clone())
    }
}
impl Deserialize for String {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Str(s) => Ok(s.clone()),
            other => Err(Error::expected("string", other)),
        }
    }
}

impl Serialize for &str {
    fn serialize(&self) -> Value {
        Value::Str((*self).to_string())
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::serialize).collect())
    }
}
impl<T: Deserialize> Deserialize for Vec<T> {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Seq(items) => items.iter().map(T::deserialize).collect(),
            other => Err(Error::expected("sequence", other)),
        }
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize(&self) -> Value {
        match self {
            Some(v) => v.serialize(),
            None => Value::Null,
        }
    }
}
impl<T: Deserialize> Deserialize for Option<T> {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Null => Ok(None),
            other => T::deserialize(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn serialize(&self) -> Value {
        (**self).serialize()
    }
}
impl<T: Deserialize> Deserialize for Box<T> {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        T::deserialize(value).map(Box::new)
    }
}

macro_rules! impl_tuple {
    ($(($($name:ident : $idx:tt),+);)*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn serialize(&self) -> Value {
                Value::Seq(vec![$(self.$idx.serialize()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn deserialize(value: &Value) -> Result<Self, Error> {
                const LEN: usize = 0 $(+ { let _ = $idx; 1 })+;
                match value {
                    Value::Seq(items) if items.len() == LEN => {
                        Ok(($($name::deserialize(&items[$idx])?,)+))
                    }
                    other => Err(Error::expected("tuple sequence", other)),
                }
            }
        }
    )*};
}

impl_tuple! {
    (A: 0);
    (A: 0, B: 1);
    (A: 0, B: 1, C: 2);
    (A: 0, B: 1, C: 2, D: 3);
}

impl Serialize for Value {
    fn serialize(&self) -> Value {
        self.clone()
    }
}
impl Deserialize for Value {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        Ok(value.clone())
    }
}
