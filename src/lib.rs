#![warn(missing_docs)]

//! # unitherm — unified in-band and out-of-band dynamic thermal control
//!
//! A full reproduction of *Li, Ge, Cameron — "System-level, Unified In-band
//! and Out-of-band Dynamic Thermal Control", ICPP 2010*, as a Rust library:
//! the paper's thermal-control framework (two-level temperature window,
//! `P_p`-policy thermal control arrays, the tDVFS daemon, hybrid fan + DVFS
//! coordination) together with a complete simulated evaluation platform
//! (RC thermal model, DVFS CPU, PWM fan behind an ADT7467 model on an
//! emulated i2c bus, lm-sensors-style drivers, BSP cluster simulation, NPB-
//! style workloads) replacing the paper's hardware testbed.
//!
//! ## Quick start
//!
//! ```
//! use unitherm::cluster::{FanScheme, DvfsScheme, Scenario, Simulation, WorkloadSpec};
//! use unitherm::core::control_array::Policy;
//!
//! // A 4-node cluster running cpu-burn under coordinated control:
//! // dynamic fan (P_p = 50, capped at 50 % duty) plus the tDVFS daemon.
//! let scenario = Scenario::new("demo")
//!     .with_workload(WorkloadSpec::CpuBurn)
//!     .with_fan(FanScheme::dynamic(Policy::MODERATE, 50))
//!     .with_dvfs(DvfsScheme::tdvfs(Policy::MODERATE))
//!     .with_max_time(60.0);
//! let report = Simulation::new(scenario).run();
//! assert!(report.avg_temp_c() > 0.0);
//! println!("{}", report.summary_line());
//! ```
//!
//! ## Crate map
//!
//! | module | contents |
//! |---|---|
//! | [`core`] | the paper's contribution: windows, control arrays, controllers, daemons |
//! | [`simnode`] | the simulated node hardware (thermal RC, CPU, fan, ADT7467, sensors) |
//! | [`hwmon`] | lm-sensors / cpufreq / i2c-fan driver layer |
//! | [`workload`] | cpu-burn, NPB-style BSP workloads, scripted traces |
//! | [`cluster`] | multi-node simulation, scenarios, reports, parallel sweeps |
//! | [`metrics`] | time series, statistics, CSV, ASCII plots |
//! | [`obs`] | observability: typed control events, counters, sinks, JSONL journal |
//! | [`experiments`] | one runner per paper table/figure, plus ablations |
//!
//! Run `cargo run --release -p unitherm-experiments --bin repro -- all` to
//! regenerate every table and figure; see `EXPERIMENTS.md` for the recorded
//! paper-vs-measured comparison.

pub use unitherm_cluster as cluster;
pub use unitherm_core as core;
pub use unitherm_experiments as experiments;
pub use unitherm_hwmon as hwmon;
pub use unitherm_metrics as metrics;
pub use unitherm_obs as obs;
pub use unitherm_simnode as simnode;
pub use unitherm_workload as workload;

/// The paper's platform constants, collected for convenience.
pub mod paper {
    /// tDVFS trigger threshold (§4.3).
    pub const TDVFS_THRESHOLD_C: f64 = 51.0;
    /// Sensor sampling rate (§4.1): four samples per second.
    pub const SAMPLE_RATE_HZ: f64 = 4.0;
    /// Traditional fan curve: minimum duty (§4.1).
    pub const PWM_MIN_PERCENT: u8 = 10;
    /// Traditional fan curve: ramp start (§4.1).
    pub const T_MIN_C: f64 = 38.0;
    /// Traditional fan curve: full-speed temperature (§4.1).
    pub const T_MAX_C: f64 = 82.0;
    /// Full fan speed (§4): 4300 RPM.
    pub const FAN_MAX_RPM: f64 = 4300.0;
    /// The evaluation cluster size.
    pub const CLUSTER_NODES: usize = 4;
    /// The DVFS ladder in MHz (§4.1).
    pub const FREQUENCIES_MHZ: [u32; 5] = [2400, 2200, 2000, 1800, 1000];
}

#[cfg(test)]
mod tests {
    #[test]
    fn paper_constants_match_platform_defaults() {
        let cfg = crate::simnode::NodeConfig::default();
        assert_eq!(cfg.fan.max_rpm, crate::paper::FAN_MAX_RPM);
        let freqs: Vec<u32> = cfg.cpu.pstates.iter().map(|p| p.freq_mhz).collect();
        assert_eq!(freqs, crate::paper::FREQUENCIES_MHZ.to_vec());
        let tdvfs = crate::core::tdvfs::TdvfsConfig::default();
        assert_eq!(tdvfs.threshold_c, crate::paper::TDVFS_THRESHOLD_C);
        let ctl = crate::core::controller::ControllerConfig::default();
        assert_eq!(ctl.t_min_c, crate::paper::T_MIN_C);
        assert_eq!(ctl.t_max_c, crate::paper::T_MAX_C);
    }
}
