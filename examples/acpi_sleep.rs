//! The third technique: ACPI sleep states under the same controller.
//!
//! §3.2.2 of the paper lists "valid sleep states for ACPI-compatible
//! system" alongside fan duties and DVFS frequencies as mode sets the
//! thermal control array can hold. This example runs the *identical*
//! unified controller machinery over C-states and replays a thermal trace
//! through three policies, showing that `P_p` means the same thing for a
//! third, completely different actuator — no new controller code.
//!
//! ```text
//! cargo run --release --example acpi_sleep
//! ```

use unitherm::core::acpi::{sleep_state_controller, SleepState};
use unitherm::core::control_array::Policy;
use unitherm::core::controller::ControllerConfig;
use unitherm::metrics::TextTable;

/// A synthetic 4 Hz trace: idle, sudden load, hot plateau with jitter,
/// gradual cool-down.
fn trace() -> Vec<f64> {
    let mut t = vec![42.0; 120];
    for i in 0..40 {
        t.push((42.0 + f64::from(i)).min(58.0));
    }
    for i in 0..240 {
        t.push(58.0 + if i % 2 == 0 { 0.3 } else { -0.3 });
    }
    for i in 0..240 {
        t.push(58.0 - 0.05 * f64::from(i));
    }
    t
}

fn main() {
    let mut table = TextTable::new(
        "ACPI C-state control under the unified controller (same trace, three policies)",
        &["P_p", "deepest state used", "final state", "time in C0 (%)", "decisions"],
    );

    for pp in [25u32, 50, 75] {
        let policy = Policy::new(pp).expect("valid");
        let mut ctl = sleep_state_controller(policy, ControllerConfig::default());
        let mut deepest = SleepState::C0;
        let mut c0_samples = 0usize;
        let mut total = 0usize;
        for temp in trace() {
            let _ = ctl.observe(temp);
            let mode = ctl.current_mode();
            deepest = deepest.max(mode);
            total += 1;
            if mode == SleepState::C0 {
                c0_samples += 1;
            }
        }
        let stats = ctl.stats();
        table.row(&[
            pp.to_string(),
            deepest.to_string(),
            ctl.current_mode().to_string(),
            format!("{:.0}", 100.0 * c0_samples as f64 / total as f64),
            (stats.level1 + stats.level2).to_string(),
        ]);
    }

    println!("{}", table.render());
    println!(
        "interpretation: a small P_p maps the same index motion onto deeper idle\n\
         states (more heat removed, more wake-up latency risked) — the identical\n\
         trade-off the knob expresses for fans and DVFS. Residency power factors:\n\
         C0={:.2} C1={:.2} C2={:.2} C3={:.2}; wake-up latencies: {}/{}/{}/{} µs.",
        SleepState::C0.power_fraction(),
        SleepState::C1.power_fraction(),
        SleepState::C2.power_fraction(),
        SleepState::C3.power_fraction(),
        SleepState::C0.wakeup_latency_us(),
        SleepState::C1.wakeup_latency_us(),
        SleepState::C2.wakeup_latency_us(),
        SleepState::C3.wakeup_latency_us(),
    );
}
