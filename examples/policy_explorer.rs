//! Policy explorer: sweep `P_p` across its whole range and chart the
//! temperature / power / performance trade-off the knob exposes.
//!
//! §4 of the paper: "we want to evaluate how effectively our system reacts
//! to the P_p in terms of power, thermal and performance". This example
//! sweeps `P_p ∈ {10, 20, …, 100}` over the hybrid controller on NPB BT
//! and prints the trade-off table plus a quick trend plot. Sweeps run in
//! parallel (one thread per configuration).
//!
//! ```text
//! cargo run --release --example policy_explorer
//! ```

use unitherm::cluster::{run_scenarios_parallel, DvfsScheme, FanScheme, Scenario, WorkloadSpec};
use unitherm::core::control_array::Policy;
use unitherm::metrics::{AsciiPlot, TextTable, TimeSeries};
use unitherm::workload::{NpbBenchmark, NpbClass};

fn main() {
    let pps: Vec<u32> = (1..=10).map(|i| i * 10).collect();
    let scenarios: Vec<Scenario> = pps
        .iter()
        .map(|&pp| {
            let policy = Policy::new(pp).expect("in range");
            Scenario::new(format!("pp{pp}"))
                .with_nodes(4)
                .with_seed(777)
                .with_workload(WorkloadSpec::Npb { bench: NpbBenchmark::Bt, class: NpbClass::B })
                .with_fan(FanScheme::dynamic(policy, 50))
                .with_dvfs(DvfsScheme::tdvfs(policy))
                .with_max_time(600.0)
                .with_recording(false)
        })
        .collect();

    println!("sweeping P_p over {pps:?} (hybrid control, BT.B.4, fan cap 50 %)…\n");
    let reports = run_scenarios_parallel(scenarios, pps.len());

    let mut table = TextTable::new(
        "P_p trade-off: small = temperature-oriented, large = cost-oriented",
        &["P_p", "avg temp (°C)", "avg duty (%)", "avg power (W)", "exec time (s)", "PDP (W·s)"],
    );
    let mut temp_trend = TimeSeries::new("avg temp", "°C");
    let mut duty_trend = TimeSeries::new("avg duty", "%");
    for (pp, r) in pps.iter().zip(&reports) {
        table.row(&[
            pp.to_string(),
            format!("{:.2}", r.avg_temp_c()),
            format!("{:.1}", r.avg_duty_pct()),
            format!("{:.2}", r.avg_node_power_w()),
            format!("{:.1}", r.exec_time_s),
            format!("{:.0}", r.power_delay_product()),
        ]);
        temp_trend.push(f64::from(*pp), r.avg_temp_c());
        duty_trend.push(f64::from(*pp), r.avg_duty_pct());
    }
    println!("{}", table.render());
    println!(
        "{}",
        AsciiPlot::new("trend over P_p (x-axis is P_p, not seconds)")
            .size(72, 12)
            .add(&temp_trend)
            .add(&duty_trend)
            .render()
    );

    let coolest = pps
        .iter()
        .zip(&reports)
        .min_by(|a, b| a.1.avg_temp_c().partial_cmp(&b.1.avg_temp_c()).expect("finite"))
        .expect("non-empty");
    println!(
        "coolest run: P_p = {} at {:.2}°C average — the temperature-oriented end, as designed",
        coolest.0,
        coolest.1.avg_temp_c()
    );
}
