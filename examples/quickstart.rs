//! Quickstart: one node, cpu-burn, the paper's coordinated control.
//!
//! Builds a simulated server node, attaches the dynamic fan controller and
//! the tDVFS daemon under a single `P_p = 50` policy, runs cpu-burn for two
//! simulated minutes and prints what happened.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use unitherm::cluster::{DvfsScheme, FanScheme, Scenario, Simulation, WorkloadSpec};
use unitherm::core::control_array::Policy;
use unitherm::metrics::AsciiPlot;

fn main() {
    let scenario = Scenario::new("quickstart")
        .with_nodes(1)
        .with_workload(WorkloadSpec::CpuBurn)
        // Coordinated control: the fan is deliberately capped at 30 % duty
        // (a weak fan) so the in-band side has something to do.
        .with_fan(FanScheme::dynamic(Policy::MODERATE, 30))
        .with_dvfs(DvfsScheme::tdvfs(Policy::MODERATE))
        .with_max_time(120.0);

    println!("running: {} …\n", scenario.name);
    let report = Simulation::new(scenario).run();
    let node = &report.nodes[0];

    println!(
        "{}",
        AsciiPlot::new("CPU temperature (°C) — 4 Hz sensor samples")
            .size(72, 14)
            .add(&node.temp)
            .render()
    );
    // Plot duty (0–100 %) and frequency rescaled to the same axis
    // (2400 MHz → 24.0) so both fit one canvas.
    let mut freq_scaled = unitherm::metrics::TimeSeries::new("freq", "×100 MHz");
    for s in node.freq.samples() {
        freq_scaled.push(s.time_s, s.value / 100.0);
    }
    println!(
        "{}",
        AsciiPlot::new("fan duty (%) and CPU frequency (×100 MHz)")
            .size(72, 10)
            .add(&node.duty)
            .add(&freq_scaled)
            .render()
    );

    println!("summary: {}", report.summary_line());
    println!(
        "  temperature: avg {:.2}°C, max {:.2}°C",
        node.temp_summary.mean, node.temp_summary.max
    );
    println!("  fan duty:    avg {:.1}%", node.duty_summary.mean);
    println!(
        "  wall power:  avg {:.2} W ({:.1} kJ total)",
        node.avg_wall_power_w,
        node.energy_j / 1000.0
    );
    if node.freq_events.is_empty() {
        println!("  tDVFS:       never needed to act");
    } else {
        println!("  tDVFS events:");
        for (t, mhz) in &node.freq_events {
            println!("    t={t:>6.1}s → {mhz} MHz");
        }
    }
    println!("  thermal emergencies: {}", node.throttle_events);
}
