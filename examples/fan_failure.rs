//! Fault injection: a fan dies mid-run on one node of the cluster.
//!
//! The paper's related work (Choi et al. [10], Heath et al. [7]) motivates
//! thermal control with fan-failure scenarios. This example seizes node 2's
//! fan 60 s into a cpu-burn run and compares three protection levels:
//!
//! * hardware-only (the CPU's emergency throttle and shutdown),
//! * tDVFS (in-band control reacts to the rising temperature),
//! * tDVFS + reduced load (what an orchestrator draining the node sees).
//!
//! With only natural convection, a dead fan under full burn is ultimately
//! fatal — the point is how long each protection level keeps the node
//! alive and serving.
//!
//! ```text
//! cargo run --release --example fan_failure
//! ```

use unitherm::cluster::{DvfsScheme, FanScheme, Scenario, Simulation, WorkloadSpec};
use unitherm::core::control_array::Policy;
use unitherm::metrics::TextTable;
use unitherm::simnode::faults::{FaultEvent, FaultPlan};
use unitherm::workload::burn::BurnConfig;

fn scenario(name: &str, dvfs: DvfsScheme, burn_util: f64) -> Scenario {
    let burn = BurnConfig {
        burst_util: burn_util,
        gap_util: (burn_util * 0.2).min(1.0),
        ..Default::default()
    };
    Scenario::new(name)
        .with_nodes(4)
        .with_seed(13)
        .with_workload(WorkloadSpec::CpuBurnTuned(burn))
        .with_fan(FanScheme::dynamic(Policy::MODERATE, 100))
        .with_dvfs(dvfs)
        .with_max_time(900.0)
        .with_fault(2, FaultPlan::none().at(60.0, FaultEvent::FanFailure))
}

fn main() {
    let arms = vec![
        ("hardware-only", scenario("hardware-only", DvfsScheme::None, 1.0)),
        ("tDVFS", scenario("tDVFS", DvfsScheme::tdvfs(Policy::AGGRESSIVE), 1.0)),
        ("tDVFS + drained", scenario("tDVFS+drain", DvfsScheme::tdvfs(Policy::AGGRESSIVE), 0.35)),
    ];

    let mut table = TextTable::new(
        "Node 2 fan seizure at t = 60 s under cpu-burn (900 s horizon)",
        &["protection", "throttle events", "shut down?", "max temp (°C)", "node-2 final freq"],
    );

    for (label, sc) in arms {
        let report = Simulation::new(sc).run();
        let victim = &report.nodes[2];
        let final_freq =
            victim.freq.last().map(|s| format!("{:.0} MHz", s.value)).unwrap_or_else(|| "?".into());
        table.row(&[
            label.to_string(),
            victim.throttle_events.to_string(),
            if victim.shut_down { "YES".into() } else { "no".to_string() },
            format!("{:.1}", victim.temp_summary.max),
            final_freq,
        ]);

        // Healthy peers must be unaffected.
        let healthy_max = report
            .nodes
            .iter()
            .enumerate()
            .filter(|(i, _)| *i != 2)
            .map(|(_, n)| n.temp_summary.max)
            .fold(f64::NEG_INFINITY, f64::max);
        println!(
            "[{label}] healthy peers peak at {healthy_max:.1}°C — unaffected by node 2's fault"
        );
    }

    println!("\n{}", table.render());
    println!(
        "takeaway: in-band control cannot replace a fan forever, but it buys the\n\
         orchestrator time — and a drained node under tDVFS survives on natural\n\
         convection alone."
    );
}
