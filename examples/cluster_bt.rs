//! The paper's headline scenario: NPB BT class B on a 4-node cluster,
//! comparing the three control regimes of §4 side by side:
//!
//! 1. traditional static fan control (the ADT7467's own curve),
//! 2. the paper's dynamic fan control alone,
//! 3. coordinated dynamic fan + tDVFS (the unified controller).
//!
//! All fans capped at 50 % duty to emulate a modest fan, the configuration
//! where coordination matters most.
//!
//! ```text
//! cargo run --release --example cluster_bt
//! ```

use unitherm::cluster::{run_scenarios_parallel, DvfsScheme, FanScheme, Scenario, WorkloadSpec};
use unitherm::core::baseline::StaticFanCurve;
use unitherm::core::control_array::Policy;
use unitherm::metrics::TextTable;
use unitherm::workload::{NpbBenchmark, NpbClass};

fn main() {
    let workload = WorkloadSpec::Npb { bench: NpbBenchmark::Bt, class: NpbClass::B };
    let base = |name: &str| {
        Scenario::new(name)
            .with_nodes(4)
            .with_seed(2010)
            .with_workload(workload.clone())
            .with_max_time(600.0)
    };
    let scenarios = vec![
        base("traditional")
            .with_fan(FanScheme::SoftwareStatic { curve: StaticFanCurve::with_max(50) }),
        base("dynamic-fan").with_fan(FanScheme::dynamic(Policy::MODERATE, 50)),
        base("coordinated")
            .with_fan(FanScheme::dynamic(Policy::MODERATE, 50))
            .with_dvfs(DvfsScheme::tdvfs(Policy::MODERATE)),
    ];

    println!("running BT.B.4 under three control regimes (parallel sweep)…\n");
    let reports = run_scenarios_parallel(scenarios, 3);

    let mut table = TextTable::new(
        "NPB BT class B × 4 nodes, fans capped at 50 % duty",
        &[
            "regime",
            "exec time (s)",
            "avg temp (°C)",
            "max temp (°C)",
            "avg duty (%)",
            "avg power (W)",
            "freq changes",
            "emergencies",
        ],
    );
    for r in &reports {
        table.row(&[
            r.name.clone(),
            format!("{:.1}", r.exec_time_s),
            format!("{:.2}", r.avg_temp_c()),
            format!("{:.2}", r.max_temp_c()),
            format!("{:.1}", r.avg_duty_pct()),
            format!("{:.2}", r.avg_node_power_w()),
            r.total_freq_transitions().to_string(),
            r.total_throttle_events().to_string(),
        ]);
    }
    println!("{}", table.render());

    let coordinated = &reports[2];
    println!("coordinated-regime DVFS activity:");
    for (i, node) in coordinated.nodes.iter().enumerate() {
        let events: Vec<String> =
            node.freq_events.iter().map(|(t, f)| format!("{f}MHz@{t:.0}s")).collect();
        println!("  node{i}: {}", if events.is_empty() { "—".into() } else { events.join(", ") });
    }
    println!(
        "\nper-rank finish times (BSP coupling keeps them tight): {:?}",
        coordinated
            .nodes
            .iter()
            .map(|n| n.finish_time_s.map(|t| format!("{t:.1}s")).unwrap_or_else(|| "DNF".into()))
            .collect::<Vec<_>>()
    );
}
